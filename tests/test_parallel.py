"""The parallel execution layer: determinism, exact accounting, crash safety.

The contract under test is the ISSUE 2 acceptance bar: ``workers=4`` and
``workers=1`` produce bit-for-bit identical classifiers, probe logs, and
merged metrics on seeded inputs; a config that dies mid-grid loses only
itself; interrupted writes never leave truncated files.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import LabelOracle, active_classify
from repro.core.callback_oracle import CallbackOracle
from repro.core.errors import error_count
from repro.core.oracle import OracleShard, ProbeBudgetExceeded
from repro.datasets.synthetic import planted_monotone, width_controlled
from repro.io import atomic_write_json, atomic_write_text
from repro.obs import MetricsRegistry, metrics_session
from repro.parallel import (
    GridConfig,
    pool_map,
    run_grid,
    spawn_generators,
    spawn_seed_sequences,
)


# ----------------------------------------------------------------------
# Module-level task functions (picklable for process pools).
# ----------------------------------------------------------------------

def _square(x):
    return x * x


def _raise_on_two(x):
    if x == 2:
        raise RuntimeError("boom on two")
    return x


def _rows_ok(n=4, tag="ok"):
    return [{"tag": tag, "i": i} for i in range(n)]


def _rows_boom(**_params):
    raise RuntimeError("config exploded")


class TestSeedSpawning:
    def test_same_seed_same_children(self):
        a = spawn_seed_sequences(123, 5)
        b = spawn_seed_sequences(123, 5)
        for sa, sb in zip(a, b):
            assert np.random.default_rng(sa).integers(0, 1 << 30, 8).tolist() == \
                np.random.default_rng(sb).integers(0, 1 << 30, 8).tolist()

    def test_children_are_independent(self):
        gens = spawn_generators(7, 3)
        draws = [g.integers(0, 1 << 30, 8).tolist() for g in gens]
        assert draws[0] != draws[1] != draws[2]

    def test_generator_spawns_advance(self):
        gen = np.random.default_rng(9)
        first = spawn_seed_sequences(gen, 2)
        second = spawn_seed_sequences(gen, 2)

        def draw(seq):
            return np.random.default_rng(seq).integers(0, 1 << 30, 4).tolist()

        assert draw(first[0]) != draw(second[0])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, -1)


class TestPoolMap:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_results_in_submission_order(self, workers):
        assert pool_map(_square, list(range(10)), workers=workers) == \
            [x * x for x in range(10)]

    def test_empty_tasks(self):
        assert pool_map(_square, [], workers=4) == []

    @pytest.mark.parametrize("workers", [1, 2])
    def test_return_exceptions(self, workers):
        results = pool_map(_raise_on_two, [1, 2, 3], workers=workers,
                           return_exceptions=True)
        assert results[0] == 1 and results[2] == 3
        assert isinstance(results[1], RuntimeError)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_fail_fast_raises_first_error(self, workers):
        with pytest.raises(RuntimeError, match="boom on two"):
            pool_map(_raise_on_two, [2, 3], workers=workers)


class TestOracleShard:
    def test_shard_probe_and_absorb_roundtrip(self):
        points = planted_monotone(50, 2, noise=0.2, rng=0)
        parent = LabelOracle(points)
        parent.probe(3)  # pre-revealed before sharding
        shard = parent.shard([3, 4, 5])
        assert shard.probe(3) == parent.peek(3)
        assert shard.cost == 0  # pre-known: free shard-side
        shard.probe(4)
        shard.probe(4)
        shard.probe(5)
        assert shard.cost == 2
        parent.absorb(shard.log, shard.new_revealed)
        assert parent.cost == 3  # 3, 4, 5 distinct
        assert parent.log == [3, 3, 4, 4, 5]
        assert parent.peek(4) == int(points.labels[4])

    def test_shard_out_of_range_index(self):
        points = planted_monotone(10, 2, noise=0.0, rng=0)
        shard = LabelOracle(points).shard([1, 2])
        with pytest.raises(IndexError):
            shard.probe(7)

    def test_absorb_enforces_budget_exactly(self):
        points = planted_monotone(20, 2, noise=0.0, rng=0)
        parent = LabelOracle(points, budget=2)
        shard = parent.shard([0, 1, 2, 3])
        shard.probe_many([0, 1, 2, 3])  # shards are unbudgeted
        with pytest.raises(ProbeBudgetExceeded):
            parent.absorb(shard.log, shard.new_revealed)
        assert parent.cost == 2  # budget exactly exhausted, not overshot

    def test_absorb_rejects_contradicting_labels(self):
        points = planted_monotone(10, 2, noise=0.0, rng=0)
        parent = LabelOracle(points)
        wrong = 1 - int(points.labels[0])
        with pytest.raises(ValueError, match="contradicts"):
            parent.absorb([0], {0: wrong})

    def test_shard_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            OracleShard()
        with pytest.raises(ValueError):
            OracleShard(labels={0: 1}, labeler=lambda c: 1, coords={0: (0.0,)})

    def test_callback_oracle_shard(self):
        points = planted_monotone(30, 2, noise=0.0, rng=1)
        oracle = CallbackOracle(points.with_hidden_labels(), _threshold_labeler)
        shard = oracle.shard([2, 3])
        a, b = shard.probe(2), shard.probe(3)
        oracle.absorb(shard.log, shard.new_revealed)
        assert oracle.cost == 2
        assert oracle.peek(2) == a and oracle.peek(3) == b
        assert oracle.total_requests == 2


def _threshold_labeler(coords):
    return int(sum(coords) > 1.0)


class TestActiveWorkersDeterminism:
    """ISSUE 2 acceptance: workers=1 vs workers=4 bit-for-bit identical."""

    def _run(self, points, workers, epsilon=0.5, seed=11):
        oracle = LabelOracle(points)
        with metrics_session(name="determinism") as registry:
            result = active_classify(points.with_hidden_labels(), oracle,
                                     epsilon=epsilon, rng=seed,
                                     workers=workers)
        return oracle, result, registry.snapshot()

    @pytest.mark.parametrize("make_points", [
        lambda: width_controlled(900, 6, noise=0.08, rng=3),
        lambda: planted_monotone(400, 2, noise=0.1, rng=5),
    ])
    def test_identical_output_and_metrics(self, make_points):
        points = make_points()
        oracle1, result1, snap1 = self._run(points, workers=1)
        oracle4, result4, snap4 = self._run(points, workers=4)

        # Identical classifiers (same predictions everywhere)...
        pred1 = result1.classifier.classify_matrix(points.coords)
        pred4 = result4.classifier.classify_matrix(points.coords)
        assert (np.asarray(pred1) == np.asarray(pred4)).all()
        # ... identical probe accounting, down to the full probe log ...
        assert result1.probing_cost == result4.probing_cost
        assert oracle1.log == oracle4.log
        assert oracle1.revealed_indices == oracle4.revealed_indices
        # ... identical weighted sample Σ and surrogate objective ...
        for a, b in zip(result1.sigma.arrays(), result4.sigma.arrays()):
            assert (a == b).all()
        assert result1.sigma_error == result4.sigma_error
        # ... and identical merged metrics (everything deterministic:
        # counters, gauges, histograms; spans/timers are wall-clock).
        assert snap1["counters"] == snap4["counters"]
        assert snap1["gauges"] == snap4["gauges"]
        assert snap1["histograms"] == snap4["histograms"]
        assert set(snap1["spans"]) == set(snap4["spans"])

    def test_error_guarantee_survives_parallelism(self):
        points = width_controlled(900, 6, noise=0.08, rng=3)
        _, result, _ = self._run(points, workers=3, epsilon=1.0)
        from repro.core.passive import solve_passive

        optimum = solve_passive(points).optimal_error
        achieved = error_count(points, result.classifier)
        assert achieved <= (1.0 + 1.0) * optimum + 1e-9 or optimum == 0

    def test_workers_rejects_unshardable_oracle(self):
        points = planted_monotone(40, 2, noise=0.1, rng=0)

        class Bare:
            def __init__(self, labels):
                self._labels = labels
                self.cost = 0

            def probe(self, index):
                return int(self._labels[index])

        with pytest.raises(ValueError, match="workers"):
            active_classify(points.with_hidden_labels(), Bare(points.labels),
                            epsilon=0.5, rng=0, workers=2)


class TestGridFanOut:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_rows_identical_any_worker_count(self, workers):
        configs = [GridConfig(name=f"cfg{i}", func=_rows_ok,
                              params={"n": 3, "tag": f"t{i}"})
                   for i in range(4)]
        results = run_grid(configs, workers=workers)
        assert [r.rows for r in results] == \
            [[{"tag": f"t{i}", "i": j} for j in range(3)] for i in range(4)]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_crash_mid_grid_keeps_prior_results(self, tmp_path, workers):
        """A config that raises loses only itself; files on disk survive."""
        configs = [
            GridConfig(name="first", func=_rows_ok, params={"tag": "a"}),
            GridConfig(name="boom", func=_rows_boom),
            GridConfig(name="last", func=_rows_ok, params={"tag": "b"}),
        ]
        results = run_grid(configs, workers=workers, out_dir=str(tmp_path))
        assert [r.ok for r in results] == [True, False, True]
        assert "config exploded" in results[1].error
        # Completed configs' files are intact and parseable...
        first = json.loads((tmp_path / "first.json").read_text())
        assert first["rows"][0]["tag"] == "a"
        last = json.loads((tmp_path / "last.json").read_text())
        assert last["rows"][0]["tag"] == "b"
        # ... and the failed config left no file at all (atomicity).
        assert not (tmp_path / "boom.json").exists()

    def test_unknown_registry_name_fails_config(self):
        results = run_grid([GridConfig(name="nope")], workers=1)
        assert not results[0].ok
        assert "unknown experiment" in results[0].error

    def test_metrics_ride_home(self):
        configs = [GridConfig(name="probe", func=_probe_rows)]
        results = run_grid(configs, workers=1, capture_metrics=True)
        assert results[0].metrics is not None
        registry = MetricsRegistry("check")
        registry.merge_snapshot(results[0].metrics)
        assert registry.counter_value("oracle.probes") == 5


def _probe_rows():
    points = planted_monotone(10, 2, noise=0.0, rng=0)
    oracle = LabelOracle(points)
    oracle.probe_many(range(5))
    return [{"probes": oracle.cost}]


class TestRegistryMerge:
    def test_counters_and_histograms_add(self):
        a, b = MetricsRegistry("a"), MetricsRegistry("b")
        for registry, bump in ((a, 2), (b, 5)):
            registry.incr("x", bump)
            registry.observe("h", bump)
        a.merge(b)
        assert a.counter_value("x") == 7
        snap = a.snapshot()["histograms"]["h"]
        assert snap["count"] == 2 and snap["total"] == 7.0
        assert snap["min"] == 2.0 and snap["max"] == 5.0

    def test_gauge_merge_policies(self):
        a, b = MetricsRegistry("a"), MetricsRegistry("b")
        a.gauge("g", 10)
        b.gauge("g", 3)
        a.merge(b, gauge_merge="max")
        assert a.gauge_value("g") == 10
        a.merge(b, gauge_merge="last")
        assert a.gauge_value("g") == 3
        with pytest.raises(ValueError):
            a.merge(b, gauge_merge="median")

    def test_span_prefix_reroots_worker_spans(self):
        worker = MetricsRegistry("worker")
        with worker.span("chain[2]"):
            pass
        parent = MetricsRegistry("parent")
        parent.merge_snapshot(worker.snapshot(),
                              span_prefix="active/sample_chains")
        assert "active/sample_chains/chain[2]" in parent.snapshot()["spans"]


class TestAtomicWrites:
    def test_failed_serialization_preserves_existing_file(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"ok": 1})
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert json.loads(target.read_text()) == {"ok": 1}
        # No temp litter left behind either.
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_atomic_text_replaces_contents(self, tmp_path):
        target = tmp_path / "t.txt"
        atomic_write_text(target, "one")
        atomic_write_text(target, "two")
        assert target.read_text() == "two"

    def test_mode_honors_umask(self, tmp_path):
        target = tmp_path / "m.txt"
        atomic_write_text(target, "x")
        umask = os.umask(0)
        os.umask(umask)
        assert (target.stat().st_mode & 0o777) == (0o666 & ~umask)
