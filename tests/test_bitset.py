"""Parity tests for the packed-bitset order engine (repro.poset.bitset).

The bitset engine's contract is *bit-identical results*, not merely equal
sizes: the Lemma 6 chain decomposition, the König antichain, and the
Theorem 4 network construction all consume the matching / order verbatim,
so every kernel here is cross-checked against the loop/dense reference —
vertex-for-vertex, chain-for-chain — on hypothesis-generated sets (with
the cutoff lowered so small instances exercise the packed path) and on
deterministic sizes straddling byte boundaries (``n = 257, 258, 264``),
where stray padding bits would first show up.
"""

from __future__ import annotations

from unittest import mock

import numpy as np
import pytest
from hypothesis import given, settings

import repro.poset.bitset as bitset_mod
from repro import PointSet
from repro.core.pairwise import (
    blocked_contending_mask,
    blocked_dominance_pair_arrays,
    blocked_dominance_pairs,
)
from repro.core.passive import contending_mask, solve_passive
from repro.flow import FlowNetwork
from repro.poset import (
    heights,
    hopcroft_karp,
    hopcroft_karp_bitset,
    matching_chain_decomposition,
    maximal_points,
    maximum_antichain,
    minimal_points,
    packed_adjacency,
    packed_order,
    popcount,
)
from repro.poset.bitset import (
    contending_mask_bitset,
    dominance_pair_count_bitset,
    maximal_points_bitset,
    minimal_points_bitset,
)
from repro.poset.dominance import _order_matrix

from .conftest import random_labeled_points
from .strategies import point_sets


def _fresh(points: PointSet) -> PointSet:
    """A copy with cold caches, so engine auto-selection is not short-
    circuited by the dense order matrix the reference path materialized."""
    return PointSet(points.coords.copy(), points.labels.copy(),
                    points.weights.copy())


def _force_bitset():
    """Context manager lowering the auto-selection cutoff to 1 point."""
    return mock.patch.object(bitset_mod, "BITSET_CUTOFF", 1)


class TestPackedOrderStructure:
    @pytest.mark.parametrize("n", [1, 7, 8, 9, 257, 258, 264])
    def test_pack_matches_order_matrix(self, n):
        ps = random_labeled_points(np.random.default_rng(n), n, 3)
        packed = packed_order(ps, block_size=64)
        order = _order_matrix(_fresh(ps))
        unpacked = np.unpackbits(packed.below, axis=1, count=n).astype(bool)
        assert np.array_equal(unpacked, order)
        unpacked_t = np.unpackbits(packed.above, axis=1, count=n).astype(bool)
        assert np.array_equal(unpacked_t, order.T)

    @pytest.mark.parametrize("n", [7, 257, 258])
    def test_padding_bits_are_zero(self, n):
        ps = random_labeled_points(np.random.default_rng(n), n, 2)
        packed = packed_order(ps)
        pad = 8 * packed.below.shape[1] - n
        assert pad > 0
        pad_mask = np.uint8((1 << pad) - 1)
        assert not np.any(packed.below[:, -1] & pad_mask)
        assert not np.any(packed.above[:, -1] & pad_mask)

    def test_cache_reused(self):
        ps = random_labeled_points(np.random.default_rng(0), 40, 2)
        assert packed_order(ps) is packed_order(ps)

    def test_popcount_axes(self):
        packed = np.packbits(np.eye(11, dtype=bool), axis=1)
        assert popcount(packed) == 11
        assert popcount(packed, axis=1).tolist() == [1] * 11


class TestConsumerParity:
    @settings(max_examples=60, deadline=None)
    @given(ps=point_sets(max_n=24))
    def test_minimal_maximal_count_parity(self, ps):
        reference_min = minimal_points(_fresh(ps))
        reference_max = maximal_points(_fresh(ps))
        reference_pairs = int(_order_matrix(_fresh(ps)).sum())
        assert minimal_points_bitset(ps) == reference_min
        assert maximal_points_bitset(ps) == reference_max
        assert dominance_pair_count_bitset(ps) == reference_pairs

    @settings(max_examples=40, deadline=None)
    @given(ps=point_sets(max_n=20))
    def test_packed_adjacency_parity(self, ps):
        order = _order_matrix(_fresh(ps))
        expected = [np.flatnonzero(order[:, u]).tolist()
                    for u in range(ps.n)]
        assert packed_adjacency(ps) == expected

    @settings(max_examples=60, deadline=None)
    @given(ps=point_sets(max_n=24))
    def test_contending_mask_parity(self, ps):
        dense = contending_mask(_fresh(ps))
        blocked = blocked_contending_mask(_fresh(ps), block_size=5)
        packed = contending_mask_bitset(ps, block_size=5)
        assert np.array_equal(packed, dense)
        assert np.array_equal(packed, blocked)

    @settings(max_examples=40, deadline=None)
    @given(ps=point_sets(max_n=20))
    def test_auto_selected_consumers_match_dense(self, ps):
        """With the cutoff forced to 1, every auto-dispatching consumer
        must agree with the dense reference on a cold copy."""
        dense_min = minimal_points(_fresh(ps))
        dense_heights = heights(_fresh(ps))
        with _force_bitset():
            cold = _fresh(ps)
            assert minimal_points(cold) == dense_min
            assert np.array_equal(heights(cold), dense_heights)


class TestMatchingParity:
    @settings(max_examples=60, deadline=None)
    @given(ps=point_sets(max_n=24))
    def test_matching_vertex_for_vertex(self, ps):
        order = _order_matrix(_fresh(ps))
        n = ps.n
        adjacency = [np.flatnonzero(order[:, u]).tolist() for u in range(n)]
        reference = hopcroft_karp(adjacency, n)
        packed = packed_order(ps)
        result = hopcroft_karp_bitset(packed.above, n)
        assert result.size == reference.size
        assert result.left_match == reference.left_match
        assert result.right_match == reference.right_match

    @settings(max_examples=40, deadline=None)
    @given(ps=point_sets(max_n=20))
    def test_chains_and_antichain_engine_parity(self, ps):
        loop_chains = matching_chain_decomposition(_fresh(ps), engine="loop")
        loop_antichain = maximum_antichain(_fresh(ps), engine="loop")
        bit_chains = matching_chain_decomposition(_fresh(ps), engine="bitset")
        bit_antichain = maximum_antichain(_fresh(ps), engine="bitset")
        assert bit_chains.chains == loop_chains.chains
        assert bit_antichain == loop_antichain

    def test_unknown_engine_rejected(self):
        ps = random_labeled_points(np.random.default_rng(1), 5, 2)
        with pytest.raises(ValueError):
            matching_chain_decomposition(ps, engine="simd")
        with pytest.raises(ValueError):
            maximum_antichain(ps, engine="simd")

    @pytest.mark.parametrize("n", [257, 258, 264])
    def test_chain_regression_near_byte_boundary(self, n):
        """n = 258-style regression: above the cutoff the auto path is the
        bitset engine and a stray padding bit would corrupt the matching
        (a phantom 259th point in every frontier)."""
        ps = random_labeled_points(np.random.default_rng(n), n, 3)
        auto = matching_chain_decomposition(ps)  # n >= cutoff: bitset
        loop = matching_chain_decomposition(_fresh(ps), engine="loop")
        assert auto.chains == loop.chains
        assert maximum_antichain(ps) == maximum_antichain(
            _fresh(ps), engine="loop")


class TestFlowConstructionParity:
    def test_add_edges_matches_sequential(self):
        gen = np.random.default_rng(3)
        for _ in range(25):
            n = int(gen.integers(2, 25))
            m = int(gen.integers(0, 50))
            tails = gen.integers(0, n, m)
            heads = gen.integers(0, n, m)
            caps = gen.random(m) * 9
            seq = FlowNetwork(n)
            for t, h, c in zip(tails, heads, caps):
                seq.add_edge(int(t), int(h), float(c))
            bulk = FlowNetwork(n)
            ids = bulk.add_edges(tails, heads, caps)
            assert bulk.heads == seq.heads
            assert bulk.caps == seq.caps
            assert bulk.tails == seq.tails
            assert bulk.adjacency == seq.adjacency
            assert ids.tolist() == list(range(0, 2 * m, 2))

    def test_add_edges_scalar_capacity_and_empty(self):
        net = FlowNetwork(3)
        assert net.add_edges(np.empty(0, int), np.empty(0, int), 1.0).size == 0
        net.add_edges(np.array([0, 1]), np.array([1, 2]), float("inf"))
        assert net.caps[0] == float("inf") and net.caps[2] == float("inf")

    def test_add_edges_validation(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edges(np.array([0]), np.array([5]), 1.0)
        with pytest.raises(ValueError):
            net.add_edges(np.array([0]), np.array([1]), -1.0)
        with pytest.raises(ValueError):
            net.add_edges(np.array([0, 1]), np.array([1]), 1.0)

    @settings(max_examples=40, deadline=None)
    @given(ps=point_sets(max_n=16))
    def test_pair_arrays_match_pair_generator(self, ps):
        src = np.flatnonzero(ps.labels == 0)
        tgt = np.flatnonzero(ps.labels == 1)
        reference = [(s, t)
                     for s, ts in blocked_dominance_pairs(ps, src, tgt, 5)
                     for t in ts]
        bulk = [(int(s), int(t))
                for ss, ts in blocked_dominance_pair_arrays(ps, src, tgt, 5)
                for s, t in zip(ss, ts)]
        assert bulk == reference

    @settings(max_examples=25, deadline=None)
    @given(ps=point_sets(max_n=14))
    def test_solve_passive_paths_agree(self, ps):
        dense = solve_passive(_fresh(ps))
        blockwise = solve_passive(_fresh(ps), block_size=4)
        hasse = solve_passive(_fresh(ps), use_hasse_reduction=True)
        assert blockwise.optimal_error == dense.optimal_error
        assert hasse.optimal_error == dense.optimal_error
        assert np.array_equal(blockwise.assignment, dense.assignment)
