"""Tests for the max-flow substrate (repro.flow)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.flow_backends import random_flow_network
from repro.flow import (
    FLOW_BACKENDS,
    RESIDUAL_EPS,
    FlowNetwork,
    dinic_max_flow,
    has_residual,
    min_cut_from_residual,
    push_relabel_max_flow,
    solve_max_flow,
    solve_min_cut,
)
from repro.obs import metrics_session


def _diamond() -> FlowNetwork:
    """Classic 4-node diamond: max flow 2 via two disjoint paths + cross edge."""
    net = FlowNetwork(4)
    net.add_edge(0, 1, 1.0)
    net.add_edge(0, 2, 1.0)
    net.add_edge(1, 3, 1.0)
    net.add_edge(2, 3, 1.0)
    net.add_edge(1, 2, 1.0)
    return net


class TestFlowNetwork:
    def test_add_edge_and_reverse_arc(self):
        net = FlowNetwork(2)
        arc = net.add_edge(0, 1, 5.0)
        assert net.residual(arc) == 5.0
        assert net.residual(arc ^ 1) == 0.0

    def test_push_updates_both_directions(self):
        net = FlowNetwork(2)
        arc = net.add_edge(0, 1, 5.0)
        net.push(arc, 3.0)
        assert net.residual(arc) == 2.0
        assert net.residual(arc ^ 1) == 3.0

    def test_reset_flow(self):
        net = FlowNetwork(2)
        arc = net.add_edge(0, 1, 5.0)
        net.push(arc, 3.0)
        net.reset_flow()
        assert net.residual(arc) == 5.0

    def test_rejects_negative_capacity(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1.0)

    def test_rejects_bad_vertex(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 2, 1.0)

    def test_add_node(self):
        net = FlowNetwork(1)
        new = net.add_node()
        assert new == 1
        net.add_edge(0, 1, 1.0)

    def test_conservation_check(self):
        net = _diamond()
        dinic_max_flow(net, 0, 3)
        assert net.check_flow_conservation(0, 3)

    def test_tail_accessor(self):
        """Public tail()/tails: the arc-origin counterpart of heads."""
        net = FlowNetwork(3)
        arc = net.add_edge(0, 1, 2.0)
        other = net.add_edge(1, 2, 3.0)
        assert net.tail(arc) == 0 and net.heads[arc] == 1
        assert net.tail(arc ^ 1) == 1  # reverse arc runs backwards
        assert net.tail(other) == 1
        assert net.tails == (0, 1, 1, 2)
        # Every forward arc's materialized tail agrees with the accessor.
        assert all(a.tail == net.tail(arc_id) for arc_id, a in net.forward_arcs())


@pytest.mark.parametrize("backend", sorted(FLOW_BACKENDS))
class TestBackends:
    def test_diamond(self, backend):
        net = _diamond()
        assert solve_max_flow(net, 0, 3, backend=backend) == pytest.approx(2.0)

    def test_single_edge(self, backend):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 7.5)
        assert solve_max_flow(net, 0, 1, backend=backend) == pytest.approx(7.5)

    def test_disconnected(self, backend):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 4.0)
        assert solve_max_flow(net, 0, 2, backend=backend) == 0.0

    def test_parallel_edges_accumulate(self, backend):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 2.0)
        net.add_edge(0, 1, 3.5)
        assert solve_max_flow(net, 0, 1, backend=backend) == pytest.approx(5.5)

    def test_bottleneck_path(self, backend):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 10.0)
        net.add_edge(1, 2, 0.5)
        net.add_edge(2, 3, 10.0)
        assert solve_max_flow(net, 0, 3, backend=backend) == pytest.approx(0.5)

    def test_source_equals_sink_rejected(self, backend):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            solve_max_flow(net, 0, 0, backend=backend)

    def test_flow_is_feasible(self, backend):
        net = random_flow_network(40, 0.2, seed=3)
        solve_max_flow(net, 0, 39, backend=backend)
        assert net.check_flow_conservation(0, 39)

    def test_clrs_figure_example(self, backend):
        """The CLRS flow-network example: known max flow 23."""
        net = FlowNetwork(6)
        s, v1, v2, v3, v4, t = range(6)
        net.add_edge(s, v1, 16)
        net.add_edge(s, v2, 13)
        net.add_edge(v1, v3, 12)
        net.add_edge(v2, v1, 4)
        net.add_edge(v2, v4, 14)
        net.add_edge(v3, v2, 9)
        net.add_edge(v3, t, 20)
        net.add_edge(v4, v3, 7)
        net.add_edge(v4, t, 4)
        assert solve_max_flow(net, s, t, backend=backend) == pytest.approx(23.0)


class TestMinCut:
    def test_cut_weight_equals_flow(self):
        cut = solve_min_cut(_diamond(), 0, 3)
        assert cut.value == pytest.approx(2.0)

    def test_cut_separates(self):
        net = _diamond()
        cut = solve_min_cut(net, 0, 3)
        assert 0 in cut.source_side
        assert 3 not in cut.source_side

    def test_cut_edges_materialized(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 4.0)
        cut = solve_min_cut(net, 0, 1)
        assert cut.cut_edges(net) == [(0, 1, 4.0)]
        assert cut.weight(net) == 4.0

    def test_residual_extraction_rejects_non_max_flow(self):
        net = _diamond()  # zero flow: sink still reachable
        with pytest.raises(AssertionError):
            min_cut_from_residual(net, 0, 3, 0.0)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            solve_max_flow(_diamond(), 0, 3, backend="bogus")


class TestEpsilonBoundary:
    """Regressions for the shared ``RESIDUAL_EPS`` admissibility contract."""

    def test_has_residual_boundary_semantics(self):
        assert not has_residual(0.0)
        assert not has_residual(RESIDUAL_EPS)
        assert has_residual(2 * RESIDUAL_EPS)

    def test_sub_epsilon_push_skipped_on_warm_start(self):
        """push_relabel must not perform sub-epsilon pushes.

        A warm-started network can leave a source arc with capacity above
        the tolerance but *residual* below it.  Pre-fix, the push closure
        moved that sub-epsilon residual anyway: the push counter counted a
        push that moved no usable flow, and the amount was stranded as
        invisible excess at the interior node (its discharge guard is
        strict, so it never drains), breaking exact conservation.
        """
        tiny = RESIDUAL_EPS / 2
        net = FlowNetwork(3)
        a = net.add_edge(0, 1, 1.0)
        b = net.add_edge(1, 2, 1.0)
        # Warm start with a feasible flow leaving sub-epsilon residual on
        # the source arc.
        net.push(a, 1.0 - tiny)
        net.push(b, 1.0 - tiny)
        with metrics_session() as reg:
            value = push_relabel_max_flow(net, 0, 2)
        assert value == 1.0 - tiny
        # No usable augmenting path exists, so not a single push happens
        # (pre-fix: one sub-epsilon push, counter == 1).
        assert reg.counters["flow.push_relabel.pushes"].value == 0
        # Conservation holds *exactly*, not merely within the default
        # 1e-9 slack that hid the stranded excess.
        assert net.check_flow_conservation(0, 2, tol=0.0)

    def test_push_relabel_value_measured_at_sink(self):
        """Stranded sub-epsilon preflow excess must not count as flow.

        With the sink unreachable the max flow is exactly 0.  Pre-fix the
        value was read source-side, so excess parked at an interior node
        by the strict discharge guard (here ~1e-12 of it) was reported as
        delivered flow.
        """
        net = FlowNetwork(3)
        net.add_edge(0, 1, 2 * RESIDUAL_EPS)
        net.add_edge(1, 0, 1.0000000000000002e-12)  # nextafter(eps, 1)
        value = push_relabel_max_flow(net, 0, 2)
        assert value == 0.0

    def test_backends_agree_at_exact_epsilon_capacity(self):
        """A capacity of exactly ``RESIDUAL_EPS`` is unusable for everyone.

        Pre-fix, capacity-scaling's exactness pass admitted residuals
        ``>= delta`` with ``delta == 0``, so it alone pushed the 1e-12 and
        returned a nonzero value while every other backend returned 0.0.
        """
        for backend in sorted(FLOW_BACKENDS):
            net = FlowNetwork(2)
            net.add_edge(0, 1, RESIDUAL_EPS)
            value = solve_max_flow(net, 0, 1, backend=backend)
            assert value == 0.0, f"{backend} admitted an epsilon-capacity arc"


class TestCutCertificate:
    """Regressions for the Lemma 8 cut-edge certificate."""

    def test_zero_capacity_crossing_arc_excluded(self):
        """Zero-capacity arcs crossing the cut are storage artifacts.

        Pre-fix, ``min_cut_from_residual`` listed every crossing forward
        arc whose residual was below tolerance — which includes capacity-0
        arcs that carry no flow and no weight.
        """
        net = FlowNetwork(3)
        real = net.add_edge(0, 1, 1.0)
        phantom = net.add_edge(0, 1, 0.0)
        net.add_edge(1, 2, 5.0)
        cut = solve_min_cut(net, 0, 2)
        assert cut.value == pytest.approx(1.0)
        assert real in cut.cut_arcs
        assert phantom not in cut.cut_arcs

    def test_every_certificate_arc_is_saturated_and_positive(self):
        """Each certificate arc individually witnesses the cut (Lemma 8)."""
        for seed in range(25):
            net = random_flow_network(20, 0.25, seed=seed)
            cut = solve_min_cut(net, 0, 19, check=False)
            for arc_id in cut.cut_arcs:
                cap = net.caps[arc_id]
                assert cap > 0.0
                assert not has_residual(cap - net.flows[arc_id])
                assert net.tail(arc_id) in cut.source_side
                assert net.heads[arc_id] not in cut.source_side
            assert cut.weight(net) == pytest.approx(cut.value,
                                                    rel=1e-9, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.integers(4, 30), st.floats(0.05, 0.5), st.integers(0, 100_000))
def test_backends_agree_with_each_other(size, density, seed):
    """Property (Lemma 7): both from-scratch backends compute equal values."""
    values = {}
    for backend in FLOW_BACKENDS:
        net = random_flow_network(size, density, seed)
        values[backend] = solve_max_flow(net, 0, size - 1, backend=backend)
    assert values["dinic"] == pytest.approx(values["push_relabel"], rel=1e-9, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(4, 25), st.floats(0.1, 0.5), st.integers(0, 100_000))
def test_backends_agree_with_networkx(size, density, seed):
    """Property: our backends match networkx's preflow-push."""
    nx = pytest.importorskip("networkx")
    net = random_flow_network(size, density, seed)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(net.num_nodes))
    for _arc, arc in net.forward_arcs():
        if graph.has_edge(arc.tail, arc.head):
            graph[arc.tail][arc.head]["capacity"] += arc.capacity
        else:
            graph.add_edge(arc.tail, arc.head, capacity=arc.capacity)
    expected = nx.maximum_flow_value(graph, 0, size - 1)
    ours = solve_max_flow(net, 0, size - 1, backend="dinic")
    assert ours == pytest.approx(expected, rel=1e-9, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(st.integers(4, 25), st.floats(0.1, 0.5), st.integers(0, 100_000))
def test_min_cut_weight_equals_max_flow(size, density, seed):
    """Property (Lemmas 7+8): extracted cut-edge weight equals flow value."""
    net = random_flow_network(size, density, seed)
    cut = solve_min_cut(net, 0, size - 1, check=False)
    assert cut.weight(net) == pytest.approx(cut.value, rel=1e-9, abs=1e-9)
