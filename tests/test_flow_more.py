"""Additional max-flow coverage: scaling backend, degenerate networks,
structural stress cases for the gap heuristic and long paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.flow_backends import random_flow_network
from repro.flow import (
    FLOW_BACKENDS,
    FlowNetwork,
    capacity_scaling_max_flow,
    solve_max_flow,
    solve_min_cut,
)


class TestCapacityScaling:
    def test_zero_capacity_network(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 0.0)
        net.add_edge(1, 2, 0.0)
        assert capacity_scaling_max_flow(net, 0, 2) == 0.0

    def test_no_edges(self):
        net = FlowNetwork(2)
        assert capacity_scaling_max_flow(net, 0, 1) == 0.0

    def test_extreme_capacity_ratio(self):
        """One tiny and one huge parallel path: both fully used."""
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1e9)
        net.add_edge(1, 3, 1e9)
        net.add_edge(0, 2, 1e-6)
        net.add_edge(2, 3, 1e-6)
        assert capacity_scaling_max_flow(net, 0, 3) == \
            pytest.approx(1e9 + 1e-6)

    def test_rejects_same_source_sink(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            capacity_scaling_max_flow(net, 0, 0)


class TestStructuralStress:
    def _long_path(self, length: int) -> FlowNetwork:
        net = FlowNetwork(length + 1)
        for i in range(length):
            net.add_edge(i, i + 1, float(i % 3 + 1))
        return net

    @pytest.mark.parametrize("backend", sorted(FLOW_BACKENDS))
    def test_long_path(self, backend):
        """Hundreds of vertices in series: exercises relabeling depth."""
        net = self._long_path(300)
        assert solve_max_flow(net, 0, 300, backend=backend) == 1.0

    @pytest.mark.parametrize("backend", sorted(FLOW_BACKENDS))
    def test_wide_bipartite(self, backend):
        """The passive-reduction shape: source -> L -> R -> sink."""
        gen = np.random.default_rng(0)
        left, right = 40, 40
        net = FlowNetwork(2 + left + right)
        source, sink = 0, 1
        for i in range(left):
            net.add_edge(source, 2 + i, float(gen.random() + 0.1))
        for j in range(right):
            net.add_edge(2 + left + j, sink, float(gen.random() + 0.1))
        for i in range(left):
            for j in range(right):
                if gen.random() < 0.15:
                    net.add_edge(2 + i, 2 + left + j, 1e6)
        values = {}
        for other in FLOW_BACKENDS:
            fresh = FlowNetwork(net.num_nodes)
            for _arc, arc in net.forward_arcs():
                fresh.add_edge(arc.tail, arc.head, arc.capacity)
            values[other] = solve_max_flow(fresh, source, sink, backend=other)
        assert values[backend] == pytest.approx(values["dinic"])

    def test_gap_heuristic_network(self):
        """A network whose middle layer disconnects mid-run (gap trigger)."""
        net = FlowNetwork(8)
        # Two layers with a single fragile bridge.
        net.add_edge(0, 1, 5.0)
        net.add_edge(0, 2, 5.0)
        net.add_edge(1, 3, 1.0)
        net.add_edge(2, 3, 1.0)
        net.add_edge(3, 4, 1.5)  # bridge saturates early
        net.add_edge(4, 5, 5.0)
        net.add_edge(4, 6, 5.0)
        net.add_edge(5, 7, 5.0)
        net.add_edge(6, 7, 5.0)
        for backend in FLOW_BACKENDS:
            fresh = FlowNetwork(8)
            for _arc, arc in net.forward_arcs():
                fresh.add_edge(arc.tail, arc.head, arc.capacity)
            assert solve_max_flow(fresh, 0, 7, backend=backend) == \
                pytest.approx(1.5), backend

    def test_min_cut_on_bridge_network(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 10.0)
        net.add_edge(1, 2, 2.0)
        net.add_edge(2, 3, 10.0)
        cut = solve_min_cut(net, 0, 3)
        assert cut.value == pytest.approx(2.0)
        assert cut.cut_edges(net) == [(1, 2, 2.0)]


@pytest.mark.parametrize("seed", range(8))
def test_all_four_backends_agree(seed):
    """Agreement across four independent implementations."""
    size = 35
    values = {}
    for backend in FLOW_BACKENDS:
        net = random_flow_network(size, 0.25, seed=seed)
        values[backend] = solve_max_flow(net, 0, size - 1, backend=backend)
    reference = values["dinic"]
    for backend, value in values.items():
        assert value == pytest.approx(reference, rel=1e-9, abs=1e-9), backend
