"""Acceptance tests for the resilience layer threaded through the pipeline.

These are the ISSUE-level criteria: chaos determinism (faults + retries
must not change the classifier or the probe bill), kill/resume round
trips through the checkpoint journal, graceful degradation, resumable
grids, and ``resilience.*`` counters reaching the CLI metrics surface.
"""

from __future__ import annotations

import json

import pytest

from repro import LabelOracle, active_classify
from repro.cli import main as cli_main
from repro.core.oracle import ProbeBudgetExceeded
from repro.datasets.synthetic import width_controlled
from repro.obs import metrics_session
from repro.parallel.grid import GridConfig, run_grid
from repro.resilience import FaultSpec, ResilienceConfig, RetryPolicy


def _dataset(n=2_000, width=4, seed=7):
    return width_controlled(n, width, noise=0.1, rng=seed)


def _chaos_config(rate=0.1, seed=3, attempts=8):
    return ResilienceConfig(
        retry=RetryPolicy(max_attempts=attempts),
        faults=FaultSpec(transient_rate=rate, seed=seed),
    )


class TestChaosDeterminism:
    """Faults + retries must be invisible in the output and the bill."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_chaotic_run_matches_fault_free_bit_for_bit(self, workers):
        truth = _dataset()
        hidden = truth.with_hidden_labels()

        plain_oracle = LabelOracle(truth)
        plain = active_classify(hidden, plain_oracle, epsilon=0.5, rng=7,
                                workers=workers)

        chaos_oracle = LabelOracle(truth)
        chaos = active_classify(hidden, chaos_oracle, epsilon=0.5, rng=7,
                                workers=workers,
                                resilience=_chaos_config(rate=0.1))

        # Identical probe bill: failed attempts never charge, retries
        # re-land on the same indices, repeats are free.
        assert chaos.probing_cost == plain.probing_cost
        assert chaos_oracle.cost == plain_oracle.cost
        # Identical weighted sample, hence identical classifier.
        assert chaos.sigma.weights == plain.sigma.weights
        assert chaos.sigma.labels == plain.sigma.labels
        assert chaos.sigma_error == plain.sigma_error
        preds_plain = [plain.classifier(p) for p in truth.coords]
        preds_chaos = [chaos.classifier(p) for p in truth.coords]
        assert preds_chaos == preds_plain
        assert chaos.report is not None and chaos.report.completed

    def test_worker_count_does_not_change_chaotic_output(self):
        truth = _dataset()
        hidden = truth.with_hidden_labels()
        results = []
        for workers in (1, 2):
            oracle = LabelOracle(truth)
            results.append(active_classify(
                hidden, oracle, epsilon=0.5, rng=7, workers=workers,
                resilience=_chaos_config(rate=0.1)))
        a, b = results
        assert a.probing_cost == b.probing_cost
        assert a.sigma.weights == b.sigma.weights
        assert a.sigma_error == b.sigma_error

    def test_parent_report_counts_faults_serially(self):
        truth = _dataset(n=1_000, width=2)
        oracle = LabelOracle(truth)
        result = active_classify(truth.with_hidden_labels(), oracle,
                                 epsilon=0.5, rng=7,
                                 resilience=_chaos_config(rate=0.2))
        assert result.report is not None
        assert result.report.faults_injected > 0
        assert result.report.retries >= result.report.faults_injected


class TestKillResume:
    """Interrupted run + resumed run must pay exactly one run's probes."""

    def test_round_trip_charges_match_single_run(self, tmp_path):
        truth = _dataset()
        hidden = truth.with_hidden_labels()
        ckpt = tmp_path / "run.ckpt.json"

        # Reference: one uninterrupted run.
        ref_oracle = LabelOracle(truth)
        reference = active_classify(hidden, ref_oracle, epsilon=0.5, rng=7)
        total = ref_oracle.cost
        assert total > 20  # the interruption below must land mid-run

        # Interrupted run: a budget half the bill kills it partway through,
        # after the journal and per-chain checkpoints have been written.
        k = total // 2
        crashed = LabelOracle(truth, budget=k)
        with pytest.raises(ProbeBudgetExceeded):
            active_classify(hidden, crashed, epsilon=0.5, rng=7,
                            resilience=ResilienceConfig(checkpoint=str(ckpt)))
        assert crashed.cost == k
        assert ckpt.exists() or (tmp_path / "run.ckpt.json.journal").exists()

        # Resume with a fresh oracle: journal replay restores the k paid
        # probes for free, checkpointed chains are skipped outright.
        resumed_oracle = LabelOracle(truth)
        resumed = active_classify(
            hidden, resumed_oracle, epsilon=0.5, rng=7,
            resilience=ResilienceConfig(checkpoint=str(ckpt), resume=True))

        assert resumed.report is not None
        assert resumed.report.restored_probes == k
        assert resumed.probing_cost == total - k  # only the new charges
        assert k + resumed.probing_cost == total
        assert resumed.sigma_error == reference.sigma_error
        assert resumed.sigma.weights == reference.sigma.weights

    def test_resume_requires_compatible_checkpoint(self, tmp_path):
        truth = _dataset(n=500, width=2)
        hidden = truth.with_hidden_labels()
        ckpt = tmp_path / "run.ckpt.json"
        oracle = LabelOracle(truth, budget=30)
        with pytest.raises(ProbeBudgetExceeded):
            active_classify(hidden, oracle, epsilon=0.5, rng=7,
                            resilience=ResilienceConfig(checkpoint=str(ckpt)))
        other = _dataset(n=600, width=3, seed=9)
        with pytest.raises(ValueError, match="checkpoint"):
            active_classify(other.with_hidden_labels(), LabelOracle(other),
                            epsilon=0.5, rng=7,
                            resilience=ResilienceConfig(checkpoint=str(ckpt),
                                                        resume=True))


class TestDegradation:
    def test_degrade_reports_instead_of_raising(self):
        truth = _dataset(n=1_000, width=2)
        oracle = LabelOracle(truth, budget=25)
        result = active_classify(
            truth.with_hidden_labels(), oracle, epsilon=0.5, rng=7,
            resilience=ResilienceConfig(degrade=True))
        assert result.report is not None
        assert result.report.degraded
        assert not result.report.completed
        assert result.report.halt_reason is not None
        assert "ProbeBudgetExceeded" in result.report.halt_reason
        # Best-effort classifier still exists and is callable.
        assert result.classifier(truth.coords[0]) in (0, 1)
        assert oracle.cost == 25

    @pytest.mark.parametrize("workers", [1, 2])
    def test_degrade_under_faults_and_workers(self, workers):
        truth = _dataset(n=1_000, width=2)
        oracle = LabelOracle(truth)
        result = active_classify(
            truth.with_hidden_labels(), oracle, epsilon=0.5, rng=7,
            workers=workers,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=2),
                faults=FaultSpec(transient_rate=0.6, seed=1),
                degrade=True))
        assert result.report is not None
        assert result.report.degraded
        assert result.classifier(truth.coords[0]) in (0, 1)


class TestCountersReachMetrics:
    def test_resilience_counters_in_session(self):
        truth = _dataset(n=1_000, width=2)
        with metrics_session(name="chaos") as registry:
            oracle = LabelOracle(truth)
            active_classify(truth.with_hidden_labels(), oracle, epsilon=0.5,
                            rng=7, resilience=_chaos_config(rate=0.2))
            snap = registry.snapshot()
        counters = snap["counters"]
        assert counters["resilience.faults_injected"] > 0
        assert counters["resilience.retries"] > 0
        assert counters["resilience.faults.transient"] == \
            counters["resilience.faults_injected"]

    def test_checkpoint_counters_in_session(self, tmp_path):
        truth = _dataset(n=1_000, width=2)
        ckpt = tmp_path / "run.ckpt.json"
        with metrics_session(name="ckpt") as registry:
            oracle = LabelOracle(truth)
            active_classify(truth.with_hidden_labels(), oracle, epsilon=0.5,
                            rng=7,
                            resilience=ResilienceConfig(checkpoint=str(ckpt)))
            snap = registry.snapshot()
        counters = snap["counters"]
        assert counters["resilience.checkpoints_written"] > 0
        assert counters["resilience.journal_appends"] == oracle.cost


class TestCLI:
    @pytest.fixture
    def data_file(self, tmp_path):
        out = tmp_path / "d.csv"
        cli_main(["generate", str(out), "--kind", "width", "--n", "400",
                  "--width", "3", "--noise", "0.1", "--seed", "3"])
        return out

    def test_inject_faults_with_metrics_out(self, data_file, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        code = cli_main(["active", str(data_file), "--epsilon", "0.8",
                         "--inject-faults", "transient=0.1,seed=2",
                         "--retry-max", "8",
                         "--metrics-out", str(metrics)])
        assert code == 0
        out = capsys.readouterr().out
        assert "resilience" in out  # RunReport summary line
        doc = json.loads(metrics.read_text())
        assert doc["counters"]["resilience.faults_injected"] > 0
        assert doc["counters"]["resilience.retries"] > 0

    def test_checkpoint_resume_flags(self, data_file, tmp_path, capsys):
        ckpt = tmp_path / "cli.ckpt.json"
        assert cli_main(["active", str(data_file), "--epsilon", "0.8",
                         "--checkpoint", str(ckpt)]) == 0
        assert ckpt.exists()
        assert cli_main(["active", str(data_file), "--epsilon", "0.8",
                         "--checkpoint", str(ckpt), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "restored" in out

    def test_resume_without_checkpoint_rejected(self, data_file, capsys):
        code = cli_main(["active", str(data_file), "--epsilon", "0.8",
                         "--resume"])
        assert code != 0

    def test_bad_fault_spec_is_a_clean_error(self, data_file, capsys):
        code = cli_main(["active", str(data_file), "--epsilon", "0.8",
                         "--inject-faults", "bogus=1"])
        assert code != 0
        assert "bogus" in capsys.readouterr().err

    def test_degrade_flag(self, data_file, capsys):
        assert cli_main(["active", str(data_file), "--epsilon", "0.8",
                         "--degrade", "--inject-faults",
                         "transient=0.1,seed=2", "--retry-max", "8"]) == 0


class TestGridResume:
    def test_resume_skips_completed_configs(self, tmp_path):
        configs = [
            GridConfig("lowerbound", {"n": 8}, label="lb8"),
            GridConfig("lowerbound", {"n": 16}, label="lb16"),
        ]
        first = run_grid(configs, out_dir=str(tmp_path))
        assert all(r.ok and not r.resumed for r in first)

        with metrics_session(name="grid") as registry:
            second = run_grid(configs, out_dir=str(tmp_path), resume=True)
            snap = registry.snapshot()
        assert all(r.ok and r.resumed for r in second)
        assert snap["counters"]["resilience.grid_skips"] == 2
        assert [r.rows for r in second] == [r.rows for r in first]

    def test_resume_reruns_missing_or_stale(self, tmp_path):
        configs = [GridConfig("lowerbound", {"n": 8}, label="lb8")]
        run_grid(configs, out_dir=str(tmp_path))
        # Clobber the result file: resume must rerun, not trust it.
        out_file = next(tmp_path.glob("lb8*"))
        out_file.write_text(json.dumps({"experiment": "other"}))
        results = run_grid(configs, out_dir=str(tmp_path), resume=True)
        assert results[0].ok and not results[0].resumed
