"""Tests for the phase profiler (repro.obs.prof) and OpenMetrics export.

The profiler is a pure function of the span-event list, so most tests
drive it with hand-built events where the self/cumulative arithmetic can
be checked exactly.
"""

from __future__ import annotations

import math

import pytest

from repro import obs
from repro.obs import MetricsRegistry, profile_events, profile_report, to_collapsed
from repro.obs.export import to_openmetrics

MS = 1_000_000  # ns per millisecond


def _event(path: str, dur_ns: int) -> dict:
    name = path.rsplit("/", 1)[-1]
    return {"name": name, "path": path, "cat": "span", "ts": 0,
            "dur": dur_ns, "pid": 1, "tid": 1, "id": None, "parent": None,
            "args": None}


class TestProfileEvents:
    def test_self_time_subtracts_direct_children(self):
        rows = profile_events([
            _event("a", 10 * MS),
            _event("a/b", 6 * MS),
            _event("a/c", 3 * MS),
        ])
        by_phase = {row["phase"]: row for row in rows}
        assert by_phase["a"]["cum_s"] == pytest.approx(0.010)
        assert by_phase["a"]["self_s"] == pytest.approx(0.001)
        assert by_phase["a/b"]["self_s"] == pytest.approx(0.006)

    def test_grandchildren_not_double_subtracted(self):
        rows = profile_events([
            _event("a", 10 * MS),
            _event("a/b", 8 * MS),
            _event("a/b/c", 5 * MS),
        ])
        by_phase = {row["phase"]: row for row in rows}
        # a's self is cum(a) - cum(a/b); a/b/c is a/b's business.
        assert by_phase["a"]["self_s"] == pytest.approx(0.002)
        assert by_phase["a/b"]["self_s"] == pytest.approx(0.003)

    def test_concurrent_children_clamp_self_and_report_overlap(self):
        rows = profile_events([
            _event("pool", 4 * MS),
            _event("pool/w0", 3 * MS),
            _event("pool/w1", 3 * MS),
        ])
        pool = {row["phase"]: row for row in rows}["pool"]
        assert pool["self_s"] == 0.0
        assert pool["conc"] == pytest.approx(1.5)

    def test_multiple_calls_aggregate(self):
        rows = profile_events([_event("a", 2 * MS), _event("a", 3 * MS)])
        (row,) = rows
        assert row["calls"] == 2
        assert row["cum_s"] == pytest.approx(0.005)
        assert row["mean_s"] == pytest.approx(0.0025)

    def test_marks_and_pathless_events_ignored(self):
        mark = {"name": "m", "path": "a", "cat": "mark", "ts": 0,
                "dur": None, "pid": 1, "tid": 1, "id": None,
                "parent": None, "args": None}
        rows = profile_events([_event("a", MS), mark])
        assert len(rows) == 1 and rows[0]["calls"] == 1

    def test_accepts_registry_source(self):
        reg = MetricsRegistry("p", trace=True)
        with reg.span("phase"):
            pass
        rows = profile_events(reg)
        assert rows[0]["phase"] == "phase"


class TestProfileReport:
    EVENTS = [_event("a", 5 * MS), _event("a/b", 2 * MS),
              _event("c", 1 * MS)]

    def test_renders_sorted_table(self):
        text = profile_report(self.EVENTS)
        lines = text.splitlines()
        assert lines[0].split()[:4] == ["phase", "calls", "self_s", "cum_s"]
        # Default sort: self time descending — a (3ms) first.
        assert lines[2].startswith("a ")

    def test_sort_by_cum_and_calls(self):
        assert profile_report(self.EVENTS, sort="cum").splitlines()[2] \
            .startswith("a ")
        profile_report(self.EVENTS, sort="calls")  # must not raise

    def test_invalid_sort_rejected(self):
        with pytest.raises(ValueError, match="sort must be one of"):
            profile_report(self.EVENTS, sort="speed")

    def test_top_truncates(self):
        text = profile_report(self.EVENTS, top=1)
        assert len(text.splitlines()) == 3  # header + rule + 1 row

    def test_empty_trace(self):
        assert profile_report([]) == "(no span events in trace)"


class TestCollapsed:
    def test_collapsed_lines_use_semicolons_and_self_us(self):
        text = to_collapsed([_event("a", 10 * MS), _event("a/b", 6 * MS)])
        assert text.splitlines() == ["a 4000", "a;b 6000"]

    def test_zero_self_parent_skipped_but_zero_leaf_kept(self):
        text = to_collapsed([
            _event("p", 2 * MS),
            _event("p/q", 2 * MS),
            _event("leaf", 0),
        ])
        assert text.splitlines() == ["leaf 0", "p;q 2000"]

    def test_writes_file(self, tmp_path):
        out = tmp_path / "stacks.txt"
        to_collapsed([_event("a", MS)], out)
        assert out.read_text() == "a 1000\n"


class TestOpenMetrics:
    @pytest.fixture
    def registry(self):
        reg = MetricsRegistry("om")
        reg.incr("oracle.probes", 7)
        reg.gauge("active.chain_width", 4)
        for value in (1.0, 2.0, 4.0):
            reg.observe("active.chain_size", value)
        reg.record_time("active.chain_seconds", 0.25)
        with reg.span("active"):
            pass
        return reg

    def test_counters_and_gauges(self, registry):
        text = to_openmetrics(registry)
        assert "# TYPE repro_oracle_probes counter" in text
        assert "repro_oracle_probes_total 7" in text
        assert "# TYPE repro_active_chain_width gauge" in text
        assert "repro_active_chain_width 4" in text

    def test_histogram_exposition_is_cumulative(self, registry):
        text = to_openmetrics(registry)
        lines = [line for line in text.splitlines()
                 if line.startswith("repro_active_chain_size_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)  # cumulative, monotone
        assert lines[-1].startswith(
            'repro_active_chain_size_bucket{le="+Inf"}')
        assert counts[-1] == 3
        assert "repro_active_chain_size_sum 7" in text
        assert "repro_active_chain_size_count 3" in text

    def test_timers_and_spans_prefixed(self, registry):
        text = to_openmetrics(registry)
        assert "repro_timer_active_chain_seconds_count 1" in text
        assert "repro_span_active_count 1" in text

    def test_ends_with_eof_and_sanitized_names(self, registry):
        registry.incr("weird name-with/junk", 1)
        text = to_openmetrics(registry)
        assert text.endswith("# EOF\n")
        assert "repro_weird_name_with_junk_total 1" in text

    def test_export_file_dispatches_prom_extension(self, registry, tmp_path):
        for suffix in ("m.prom", "m.om", "m.openmetrics"):
            out = tmp_path / suffix
            obs.export_file(registry, out)
            assert out.read_text().endswith("# EOF\n")

    def test_report_includes_quantile_columns(self, registry):
        text = obs.report(registry)
        assert "p50" in text and "p99" in text


class TestProfileOfRealRun:
    def test_active_run_profile_is_consistent(self):
        from repro import LabelOracle, active_classify
        from repro.datasets.synthetic import width_controlled

        points = width_controlled(200, 3, noise=0.1, rng=5)
        oracle = LabelOracle(points)
        with obs.metrics_session(name="run", trace=True) as reg:
            active_classify(points.with_hidden_labels(), oracle,
                            epsilon=0.8, rng=1)
        rows = profile_events(reg)
        by_phase = {row["phase"]: row for row in rows}
        assert "active" in by_phase
        # Cumulative dominates self for the root; children are nested.
        root = by_phase["active"]
        assert root["cum_s"] >= root["self_s"] >= 0.0
        children_cum = sum(
            row["cum_s"] for path, row in by_phase.items()
            if path.startswith("active/") and path.count("/") == 1)
        assert root["self_s"] == pytest.approx(
            max(0.0, root["cum_s"] - children_cum), abs=1e-9)
        assert not math.isnan(root["mean_s"])
