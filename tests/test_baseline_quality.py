"""Statistical quality of the baselines — the Section 1.2 claims, measured.

Each baseline carries a qualitative promise; these tests measure it over
multiple seeds so a single lucky/unlucky run cannot flip the verdict.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LabelOracle, error_count, solve_passive
from repro.baselines import (
    a2_classify,
    majority_classifier,
    probe_all_classify,
    tao2018_classify,
)
from repro.datasets.synthetic import width_controlled
from repro.experiments._common import chainwise_optimum

N, WIDTH, NOISE = 3_000, 4, 0.08
SEEDS = range(6)


def _mean_ratio(method) -> float:
    ratios = []
    for seed in SEEDS:
        points = width_controlled(N, WIDTH, noise=NOISE, rng=seed)
        optimum = chainwise_optimum(points)
        oracle = LabelOracle(points)
        classifier = method(points.with_hidden_labels(), oracle, seed)
        err = error_count(points, classifier)
        ratios.append(err / optimum if optimum else 1.0)
    return float(np.mean(ratios))


class TestTao2018Promise:
    def test_mean_ratio_within_two(self):
        """[25]'s promise is expected error <= 2 k*; our reconstruction
        should track that in the mean (individual runs may exceed it)."""
        ratio = _mean_ratio(
            lambda hidden, oracle, seed: tao2018_classify(
                hidden, oracle, rng=seed).classifier)
        assert ratio <= 2.0

    def test_probes_logarithmic_in_chain_length(self):
        costs = {}
        for n in (2_000, 32_000):
            points = width_controlled(n, WIDTH, noise=NOISE, rng=0)
            oracle = LabelOracle(points)
            result = tao2018_classify(points.with_hidden_labels(), oracle,
                                      rng=1)
            costs[n] = result.probing_cost
        # 16x the data should cost ~log-factor more probes, not 16x.
        assert costs[32_000] <= costs[2_000] + 6 * WIDTH


class TestA2Promise:
    def test_mean_ratio_close_to_one(self):
        ratio = _mean_ratio(
            lambda hidden, oracle, seed: a2_classify(
                hidden, oracle, epsilon=0.5, rng=seed).classifier)
        assert ratio <= 1.3


class TestProbeAllPromise:
    def test_always_exactly_optimal(self):
        for seed in SEEDS:
            points = width_controlled(N, WIDTH, noise=NOISE, rng=seed)
            oracle = LabelOracle(points)
            result = probe_all_classify(points.with_hidden_labels(), oracle)
            assert error_count(points, result.classifier) == \
                pytest.approx(solve_passive(points).optimal_error)


class TestMajorityFloor:
    def test_majority_is_clearly_worse_than_real_methods(self):
        """The floor is a floor: real methods beat it decisively."""
        majority_ratio = _mean_ratio(
            lambda hidden, oracle, seed: majority_classifier(
                hidden, oracle, rng=seed))
        tao_ratio = _mean_ratio(
            lambda hidden, oracle, seed: tao2018_classify(
                hidden, oracle, rng=seed).classifier)
        assert majority_ratio > 2 * tao_ratio
