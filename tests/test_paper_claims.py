"""One test per paper claim — the reviewer's checklist, in executable form.

Each test restates a theorem/lemma and verifies its content end to end
through the public API.  Finer-grained coverage lives in the per-module
test files; this file is the navigable summary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConstantClassifier,
    DeterministicPairProber,
    LabelOracle,
    PointSet,
    active_classify,
    adversarial_family,
    brute_force_passive,
    dominance_width,
    error_count,
    evaluate_on_family,
    maximum_antichain,
    minimum_chain_decomposition,
    solve_passive,
    solve_passive_1d,
    theoretical_totalcost,
    weighted_error,
)
from repro.datasets.synthetic import planted_threshold_1d, width_controlled
from repro.experiments._common import chainwise_optimum
from repro.poset.chains import is_valid_chain_decomposition
from repro.poset.width import is_antichain
from repro.stats.estimation import lemma5_sample_size


class TestTheorem1:
    """Finding an optimal classifier actively needs Omega(n) probes."""

    def test_accuracy_forces_quadratic_family_cost(self):
        n = 96
        family = adversarial_family(n)
        assert len(family) == n
        # Any deterministic pair-prober accurate on > 2/3 of the family
        # probes >= (1-c) n/2 pairs with c = 4/5, paying Omega(n^2) total.
        for ell in range(0, n // 2 + 1):
            prober = DeterministicPairProber(
                tuple(range(1, ell + 1)), ConstantClassifier(0))
            evaluation = evaluate_on_family(prober, n)
            if evaluation.nonoptcnt <= n / 3:
                assert evaluation.totalcost >= n * n * 9 / 200
                # ... which is Omega(n) per input on average.
                assert evaluation.totalcost / n >= 9 * n / 200

    def test_lemma19_closed_form(self):
        n = 40
        for ell in (0, 5, 13, 20):
            prober = DeterministicPairProber(
                tuple(range(1, ell + 1)), ConstantClassifier(0))
            assert evaluate_on_family(prober, n).totalcost == \
                theoretical_totalcost(n, ell)


class TestTheorem2:
    """(1+eps)-approximation whp with ~ (w/eps^2) log n log(n/w) probes."""

    def test_error_guarantee_and_sublinearity(self):
        n, w, eps = 30_000, 4, 0.5
        points = width_controlled(n, w, noise=0.08, rng=0)
        optimum = chainwise_optimum(points)
        oracle = LabelOracle(points)
        result = active_classify(points.with_hidden_labels(), oracle,
                                 epsilon=eps, rng=1)
        achieved = error_count(points, result.classifier)
        assert achieved <= (1 + eps) * optimum + 1e-9
        assert result.probing_cost < n  # strictly fewer labels than naive
        assert result.num_chains == w

    def test_zero_kstar_recovered_exactly(self):
        """Remark after Theorem 2: k* = 0 => optimal classifier whp."""
        points = width_controlled(20_000, 4, noise=0.0, rng=2)
        oracle = LabelOracle(points)
        result = active_classify(points.with_hidden_labels(), oracle,
                                 epsilon=1.0, rng=3)
        assert error_count(points, result.classifier) == 0

    def test_probing_cost_holds_every_run(self):
        """Remark: the cost bound holds with probability 1 (cost <= n)."""
        points = planted_threshold_1d(5_000, noise=0.2, rng=4)
        from repro import active_classify_1d

        for seed in range(5):
            oracle = LabelOracle(points)
            result = active_classify_1d(points.with_hidden_labels(), oracle,
                                        epsilon=0.5, rng=seed)
            assert result.probing_cost <= points.n


class TestTheorem3:
    """Active reduces to passive: the finish is a Problem 2 instance."""

    def test_sigma_is_a_weighted_passive_instance(self):
        points = width_controlled(8_000, 4, noise=0.1, rng=5)
        oracle = LabelOracle(points)
        result = active_classify(points.with_hidden_labels(), oracle,
                                 epsilon=0.5, rng=6)
        sigma = result.sigma_points
        # The returned classifier is the exact Problem 2 optimum on Sigma.
        assert weighted_error(sigma, result.classifier) == \
            pytest.approx(solve_passive(sigma).optimal_error)
        # Sigma is much smaller than P (that's the point of Theorem 3).
        assert sigma.n < points.n


class TestTheorem4:
    """Problem 2 solved exactly in O(dn^2) + T_maxflow(n)."""

    def test_mincut_equals_exhaustive_optimum(self):
        gen = np.random.default_rng(7)
        for _ in range(15):
            n = int(gen.integers(2, 11))
            d = int(gen.integers(1, 4))
            ps = PointSet(gen.integers(0, 4, size=(n, d)).astype(float),
                          gen.integers(0, 2, size=n),
                          gen.random(n) + 0.1)
            assert solve_passive(ps).optimal_error == \
                pytest.approx(brute_force_passive(ps))

    def test_weighted_answer_differs_from_unweighted(self):
        """Section 1.1: weights change the optimal classifier (Fig 1b)."""
        from repro.datasets.figures import (
            figure1_point_set,
            figure1_weighted_point_set,
        )

        unweighted = solve_passive(figure1_point_set())
        weighted = solve_passive(figure1_weighted_point_set())
        assert unweighted.optimal_error == 3.0
        assert weighted.optimal_error == 104.0
        assert (unweighted.assignment != weighted.assignment).any()


class TestLemma5:
    def test_sample_size_guarantees_deviation_bound(self):
        phi, delta, mu = 0.1, 0.25, 0.5
        t = lemma5_sample_size(phi, delta)
        gen = np.random.default_rng(8)
        failures = sum(
            abs((gen.random(t) < mu).mean() - mu) >= phi
            for _ in range(200)
        )
        assert failures / 200 <= delta


class TestLemma6:
    def test_decomposition_has_exactly_w_chains(self):
        gen = np.random.default_rng(9)
        for _ in range(10):
            n = int(gen.integers(2, 40))
            d = int(gen.integers(1, 4))
            ps = PointSet(gen.integers(0, 5, size=(n, d)).astype(float),
                          [0] * n)
            decomposition = minimum_chain_decomposition(ps)
            antichain = maximum_antichain(ps)
            assert is_valid_chain_decomposition(ps, decomposition)
            assert is_antichain(ps, antichain)
            # Dilworth: both sides certify w.
            assert decomposition.num_chains == len(antichain)
            assert decomposition.num_chains == dominance_width(ps)


class TestLemmas7And8:
    def test_maxflow_equals_mincut_weight(self):
        from repro.experiments.flow_backends import random_flow_network
        from repro.flow import solve_min_cut

        for seed in range(10):
            net = random_flow_network(30, 0.2, seed=seed)
            cut = solve_min_cut(net, 0, 29, check=False)
            assert cut.weight(net) == pytest.approx(cut.value)


class TestLemma9:
    def test_1d_guarantee(self):
        from repro import active_classify_1d

        points = planted_threshold_1d(25_000, noise=0.1, rng=10)
        optimum = solve_passive_1d(points).optimal_error
        oracle = LabelOracle(points)
        result = active_classify_1d(points.with_hidden_labels(), oracle,
                                    epsilon=0.5, delta=0.05, rng=11)
        assert error_count(points, result.classifier) <= 1.5 * optimum + 1e-9
        assert result.probing_cost < points.n / 2


class TestLemma13:
    def test_sigma_weight_telescopes_to_n(self):
        from repro import active_classify_1d

        points = planted_threshold_1d(10_000, noise=0.1, rng=12)
        oracle = LabelOracle(points)
        result = active_classify_1d(points.with_hidden_labels(), oracle,
                                    epsilon=0.5, rng=13)
        assert result.sigma.total_weight == pytest.approx(points.n)


class TestLemma15:
    def test_contending_restriction_preserves_optimum(self):
        gen = np.random.default_rng(14)
        for _ in range(8):
            n = int(gen.integers(5, 60))
            ps = PointSet(gen.integers(0, 4, size=(n, 2)).astype(float),
                          gen.integers(0, 2, size=n), gen.random(n) + 0.1)
            with_reduction = solve_passive(ps, use_contending_reduction=True)
            without = solve_passive(ps, use_contending_reduction=False)
            assert with_reduction.optimal_error == \
                pytest.approx(without.optimal_error)
