"""Tests for result auditing and certificates (repro.core.validation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LabelOracle, PointSet, active_classify, solve_passive
from repro.core.validation import (
    AuditReport,
    audit_active_result,
    audit_passive_result,
    conflict_matching_lower_bound,
)
from repro.datasets.synthetic import planted_monotone, width_controlled


class TestAuditReport:
    def test_ok_when_no_failures(self):
        report = AuditReport()
        report.record("a", True)
        assert report.ok
        report.raise_on_failure()  # no raise

    def test_failure_recorded_and_raised(self):
        report = AuditReport()
        report.record("good", True)
        report.record("bad", False)
        assert not report.ok
        assert report.failures == ["bad"]
        with pytest.raises(AssertionError, match="bad"):
            report.raise_on_failure()

    def test_repr(self):
        report = AuditReport()
        report.record("x", True)
        assert "failures=none" in repr(report)


class TestConflictMatchingLowerBound:
    def test_monotone_input_zero(self, monotone_2d):
        assert conflict_matching_lower_bound(monotone_2d) == 0.0

    def test_single_conflict(self):
        ps = PointSet([(0.0,), (1.0,)], [1, 0], [5.0, 3.0])
        # One conflicting pair; the lighter endpoint weighs 3.
        assert conflict_matching_lower_bound(ps) == 3.0
        assert solve_passive(ps).optimal_error == 3.0

    def test_tight_for_unit_weights(self):
        gen = np.random.default_rng(1)
        for seed in range(10):
            ps = planted_monotone(60, 2, noise=0.25, rng=seed)
            bound = conflict_matching_lower_bound(ps)
            optimum = solve_passive(ps).optimal_error
            assert bound == pytest.approx(optimum)

    def test_sound_for_general_weights(self):
        for seed in range(10):
            ps = planted_monotone(50, 2, noise=0.25, rng=seed, weights="random")
            bound = conflict_matching_lower_bound(ps)
            optimum = solve_passive(ps).optimal_error
            assert bound <= optimum + 1e-9

    def test_empty(self):
        assert conflict_matching_lower_bound(PointSet.from_points([])) == 0.0


class TestAuditPassive:
    def test_valid_result_passes(self, tiny_2d):
        result = solve_passive(tiny_2d)
        report = audit_passive_result(tiny_2d, result)
        assert report.ok, report.failures

    def test_weighted_result_passes(self):
        from repro.datasets.figures import figure1_weighted_point_set

        points = figure1_weighted_point_set()
        report = audit_passive_result(points, solve_passive(points))
        assert report.ok, report.failures

    def test_corrupted_result_fails(self, tiny_2d):
        result = solve_passive(tiny_2d)
        tampered = PassiveResultTamper(result)
        report = audit_passive_result(tiny_2d, tampered)
        assert not report.ok


class PassiveResultTamper:
    """A PassiveResult stand-in with an inflated error claim."""

    def __init__(self, result):
        self.assignment = result.assignment
        self.optimal_error = result.optimal_error + 5.0  # lie
        self.flow_value = result.flow_value
        self.classifier = result.classifier


class TestAuditActive:
    def test_valid_run_passes(self):
        points = width_controlled(2_000, 4, noise=0.08, rng=2)
        oracle = LabelOracle(points)
        result = active_classify(points.with_hidden_labels(), oracle,
                                 epsilon=0.5, rng=3)
        from repro.experiments._common import chainwise_optimum

        report = audit_active_result(points, result, oracle,
                                     true_optimum=chainwise_optimum(points))
        assert report.ok, report.failures

    def test_audit_without_optimum(self, monotone_2d):
        oracle = LabelOracle(monotone_2d)
        result = active_classify(monotone_2d.with_hidden_labels(), oracle,
                                 epsilon=1.0, rng=4)
        report = audit_active_result(monotone_2d, result, oracle)
        assert report.ok, report.failures

    def test_foreign_oracle_fails_label_check(self, monotone_2d):
        oracle = LabelOracle(monotone_2d)
        result = active_classify(monotone_2d.with_hidden_labels(), oracle,
                                 epsilon=1.0, rng=5)
        fresh_oracle = LabelOracle(monotone_2d)  # never probed
        report = audit_active_result(monotone_2d, result, fresh_oracle)
        assert "Sigma labels match the oracle's revealed labels" in report.failures


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 12), st.integers(0, 10_000))
def test_matching_bound_tight_under_unit_weights(n, seed):
    """Property (König duality): matching bound == k* for unit weights."""
    gen = np.random.default_rng(seed)
    coords = gen.integers(0, 4, size=(n, 2)).astype(float)
    labels = gen.integers(0, 2, size=n)
    ps = PointSet(coords, labels)
    assert conflict_matching_lower_bound(ps) == \
        pytest.approx(solve_passive(ps).optimal_error)
