"""Tests for the multi-model serve fleet (repro.serve.fleet)."""

from __future__ import annotations

import pytest

from repro.core.classifier import ConstantClassifier, ThresholdClassifier
from repro.core.points import PointSet
from repro.serve import (
    UNAVAILABLE,
    ModelArtifact,
    ModelFleet,
    ServeLoadTransient,
    fit_artifact,
    load_artifact,
    save_artifact,
)


@pytest.fixture
def fleet_dir(tmp_path, rng):
    """Three deployed models (alpha/beta/gamma) with distinct fits."""
    directory = tmp_path / "models"
    directory.mkdir()
    for k, name in enumerate(("alpha", "beta", "gamma")):
        coords = rng.random((40, 2))
        labels = (coords.sum(axis=1) > 0.8 + 0.2 * k).astype(int)
        artifact = fit_artifact(PointSet(coords, labels), "passive")
        save_artifact(artifact, directory / f"{name}.json")
    return directory


def _refit(artifact: ModelArtifact, marker: int) -> ModelArtifact:
    """Same classifier, new digest: a canary-agreeing redeploy."""
    return ModelArtifact(
        classifier=artifact.classifier,
        fallback=artifact.fallback,
        fit={**artifact.fit, "refit": marker},
        chains=artifact.chains,
        certificate=artifact.certificate,
    )


class TestFleetDispatch:
    def test_routes_to_named_model(self, fleet_dir, rng):
        with ModelFleet.from_directory(fleet_dir) as fleet:
            assert fleet.models == ["alpha", "beta", "gamma"]
            coords = rng.random((8, 2))
            for name in fleet.models:
                result = fleet.dispatch(name, coords)
                assert result.ok and result.n == 8
            digests = {h.name: h.digest for h in fleet.health()}
            assert len(set(digests.values())) == 3  # one engine per model

    def test_unknown_model_is_an_error(self, fleet_dir):
        with ModelFleet.from_directory(fleet_dir) as fleet:
            with pytest.raises(ValueError, match="unknown model"):
                fleet.dispatch("delta", [(0.5, 0.5)])

    def test_duplicate_registration_rejected(self, fleet_dir):
        with ModelFleet.from_directory(fleet_dir) as fleet:
            with pytest.raises(ValueError, match="already registered"):
                fleet.register("alpha", fleet_dir / "alpha.json")

    def test_classify_single_point(self, fleet_dir):
        with ModelFleet.from_directory(fleet_dir) as fleet:
            result = fleet.classify("alpha", (0.9, 0.9))
            assert result.ok and result.n == 1

    def test_submit_and_drain_per_model_queues(self, fleet_dir, rng):
        with ModelFleet.from_directory(fleet_dir, queue_limit=2) as fleet:
            outcomes = [
                fleet.submit("alpha", rng.random((4, 2))) for _ in range(5)
            ]
            shed = [o for o in outcomes if o is not None]
            assert len(shed) == 3
            assert all(s.status == "overloaded" for s in shed)
            # alpha's storm left beta's queue untouched.
            assert fleet.submit("beta", rng.random((4, 2))) is None
            answered = fleet.drain("alpha")
            assert len(answered) == 2 and all(a.ok for a in answered)
            assert len(fleet.drain("beta")) == 1

    def test_validation(self, fleet_dir):
        with pytest.raises(ValueError, match="resident_limit"):
            ModelFleet(resident_limit=0)
        with pytest.raises(ValueError, match="canary_count"):
            ModelFleet(canary_count=0)
        with pytest.raises(ValueError, match="canary_tolerance"):
            ModelFleet(canary_tolerance=1.5)
        with pytest.raises(ValueError, match="watch_min"):
            ModelFleet(watch_min=4, watch_window=2)
        with pytest.raises(ValueError, match="no model artifacts"):
            ModelFleet.from_directory(fleet_dir / "empty")


class TestFleetResidency:
    def test_lru_eviction_bounds_live_engines(self, fleet_dir, rng):
        with ModelFleet.from_directory(fleet_dir, resident_limit=2) as fleet:
            coords = rng.random((4, 2))
            fleet.dispatch("alpha", coords)
            fleet.dispatch("beta", coords)
            assert fleet.resident == ["alpha", "beta"]
            fleet.dispatch("gamma", coords)  # alpha is LRU -> evicted
            assert fleet.resident == ["beta", "gamma"]
            fleet.dispatch("beta", coords)  # refresh beta's recency
            fleet.dispatch("alpha", coords)  # cold load; gamma is now LRU
            assert fleet.resident == ["beta", "alpha"]
            rows = {h.name: h for h in fleet.health()}
            assert rows["alpha"].evictions == 1 and rows["alpha"].cold_loads == 2
            assert not rows["gamma"].resident
            # Counters survive eviction.
            assert rows["gamma"].answered == 1

    def test_eviction_closes_journal_and_reload_resumes(
        self, fleet_dir, tmp_path, rng
    ):
        journals = tmp_path / "journals"
        with ModelFleet.from_directory(
            fleet_dir, resident_limit=1, journal_dir=journals
        ) as fleet:
            coords = rng.random((4, 2))
            for _ in range(3):
                fleet.dispatch("alpha", coords)
            fleet.dispatch("beta", coords)  # evicts alpha, journal closed
            assert fleet.resident == ["beta"]
            assert fleet.resumed_requests("alpha") == 3
            result = fleet.dispatch("alpha", coords)  # warm restart
            assert result.ok
            assert result.request_id == 3  # sequence resumed, not restarted

    def test_close_evicts_everything(self, fleet_dir, rng):
        fleet = ModelFleet.from_directory(fleet_dir)
        fleet.dispatch("alpha", rng.random((4, 2)))
        fleet.dispatch("beta", rng.random((4, 2)))
        fleet.close()
        assert fleet.resident == []


class TestFleetBulkheads:
    def test_manual_quarantine_answers_unavailable(self, fleet_dir, rng):
        with ModelFleet.from_directory(fleet_dir) as fleet:
            coords = rng.random((4, 2))
            fleet.dispatch("beta", coords)
            fleet.quarantine_model("beta", reason="operator hold")
            result = fleet.dispatch("beta", coords)
            assert result.status == UNAVAILABLE
            assert result.source == "bulkhead"
            assert result.labels is None and result.degraded
            # Siblings are untouched.
            assert fleet.dispatch("alpha", coords).ok
            rows = {h.name: h for h in fleet.health()}
            assert rows["beta"].state == "quarantined"
            assert not rows["beta"].resident  # quarantine evicts
            fleet.reinstate_model("beta")
            assert fleet.dispatch("beta", coords).ok
            assert fleet.swap_history("beta")[-1]["action"] == "reinstate"

    def test_failing_model_trips_breaker_then_quarantine(
        self, fleet_dir, rng
    ):
        def broken(path):
            raise ValueError("artifact store returns garbage")

        with ModelFleet.from_directory(
            fleet_dir,
            loader=broken,
            fallback=None,
            breaker_threshold=2,
            breaker_cooldown=1,
            quarantine_after_trips=2,
        ) as fleet:
            coords = rng.random((4, 2))
            statuses = [fleet.dispatch("alpha", coords).status for _ in range(12)]
            assert "failed" in statuses
            assert statuses[-1] == UNAVAILABLE
            rows = {h.name: h for h in fleet.health()}
            assert rows["alpha"].state == "quarantined"

    def test_engine_exception_stays_inside_the_bulkhead(self, fleet_dir):
        with ModelFleet.from_directory(fleet_dir) as fleet:
            result = fleet.dispatch("alpha", object())  # unconvertible coords
            assert result.status in ("failed", UNAVAILABLE)
            # The fleet survives and siblings still answer.
            assert fleet.dispatch("beta", [(0.5, 0.5)]).ok


class TestFleetHotSwap:
    def test_poll_ignores_unchanged_files(self, fleet_dir, rng):
        with ModelFleet.from_directory(fleet_dir) as fleet:
            fleet.dispatch("alpha", rng.random((4, 2)))
            assert fleet.poll() == []

    def test_canary_agreement_promotes(self, fleet_dir, rng):
        with ModelFleet.from_directory(fleet_dir, canary_count=16) as fleet:
            fleet.dispatch("alpha", rng.random((4, 2)))
            old = {h.name: h.digest for h in fleet.health()}["alpha"]
            refit = _refit(load_artifact(fleet_dir / "alpha.json"), marker=1)
            save_artifact(refit, fleet_dir / "alpha.json")
            events = fleet.poll()
            assert [e["action"] for e in events] == ["promote"]
            assert events[0]["model"] == "alpha"
            rows = {h.name: h for h in fleet.health()}
            assert rows["alpha"].digest != old
            assert rows["alpha"].promotions == 1 and rows["alpha"].watching
            # Surviving the watch window accepts the candidate.
            for _ in range(fleet.watch_window):
                assert fleet.dispatch("alpha", rng.random((4, 2))).ok
            rows = {h.name: h for h in fleet.health()}
            assert not rows["alpha"].watching
            assert fleet.swap_history("alpha")[-1]["action"] == "accept"

    def test_canary_disagreement_rejects_and_repins(self, fleet_dir, rng):
        with ModelFleet.from_directory(fleet_dir, canary_count=16) as fleet:
            fleet.dispatch("alpha", rng.random((4, 2)))
            incumbent = load_artifact(fleet_dir / "alpha.json")
            hostile = ModelArtifact(
                classifier=ConstantClassifier(1),
                fit={"mode": "manual", "dim": 2},
            )
            save_artifact(hostile, fleet_dir / "alpha.json")
            events = fleet.poll()
            assert [e["action"] for e in events] == ["reject"]
            assert "canary" in events[0]["reason"]
            # The hostile bytes are preserved for forensics...
            assert list(fleet_dir.glob("alpha.json.quarantined*"))
            # ...and the incumbent re-pinned on disk, still serving.
            assert load_artifact(fleet_dir / "alpha.json").digest == incumbent.digest
            assert fleet.dispatch("alpha", rng.random((4, 2))).ok
            rows = {h.name: h for h in fleet.health()}
            assert rows["alpha"].rejected_swaps == 1
            assert rows["alpha"].digest == incumbent.digest

    def test_dim_mismatch_rejects(self, fleet_dir, rng):
        with ModelFleet.from_directory(fleet_dir) as fleet:
            fleet.dispatch("alpha", rng.random((4, 2)))
            wrong_shape = ModelArtifact(
                classifier=ThresholdClassifier(0.5, dim=0),
                fit={"mode": "manual", "dim": 3},
            )
            save_artifact(wrong_shape, fleet_dir / "alpha.json")
            (event,) = fleet.poll()
            assert event["action"] == "reject"
            assert "dim 3" in event["reason"]

    def test_corrupt_candidate_rejects_and_repins(self, fleet_dir, rng):
        with ModelFleet.from_directory(fleet_dir) as fleet:
            fleet.dispatch("alpha", rng.random((4, 2)))
            incumbent = load_artifact(fleet_dir / "alpha.json")
            (fleet_dir / "alpha.json").write_text('{"definitely": "not a model"}')
            (event,) = fleet.poll()
            assert event["action"] == "reject"
            assert "verification" in event["reason"]
            assert list(fleet_dir.glob("alpha.json.quarantined*"))
            assert load_artifact(fleet_dir / "alpha.json").digest == incumbent.digest
            assert fleet.dispatch("alpha", rng.random((4, 2))).ok

    def test_transient_store_trouble_retries_next_poll(self, fleet_dir, rng):
        calls = {"fail": True}
        real = load_artifact

        def flaky(path):
            if calls["fail"]:
                raise ServeLoadTransient("slow volume")
            return real(path)

        with ModelFleet.from_directory(fleet_dir, loader=flaky) as fleet:
            calls["fail"] = False
            fleet.dispatch("alpha", rng.random((4, 2)))
            refit = _refit(load_artifact(fleet_dir / "alpha.json"), marker=2)
            save_artifact(refit, fleet_dir / "alpha.json")
            calls["fail"] = True
            assert fleet.poll() == []  # transient: no reject, no quarantine
            assert not list(fleet_dir.glob("alpha.json.quarantined*"))
            calls["fail"] = False
            (event,) = fleet.poll()  # fingerprint stayed stale -> retried
            assert event["action"] == "promote"

    def test_cold_load_never_serves_unvetted_bytes(self, fleet_dir, rng):
        with ModelFleet.from_directory(fleet_dir) as fleet:
            coords = rng.random((4, 2))
            fleet.dispatch("alpha", coords)
            incumbent = load_artifact(fleet_dir / "alpha.json")
            fleet.evict("alpha")
            # New bytes land while the engine is cold; nobody canaried them.
            hostile = ModelArtifact(
                classifier=ConstantClassifier(1),
                fit={"mode": "manual", "dim": 2},
            )
            save_artifact(hostile, fleet_dir / "alpha.json")
            result = fleet.dispatch("alpha", coords)  # cold load
            assert result.ok
            rows = {h.name: h for h in fleet.health()}
            # The vetted incumbent serves from memory, not the new file.
            assert rows["alpha"].digest == incumbent.digest
            # The deploy file is left for poll to judge (and reject).
            (event,) = fleet.poll()
            assert event["action"] == "reject"

    def test_spike_rollback_repins_incumbent(self, fleet_dir, rng):
        storm = {"on": False}
        real = load_artifact

        def browning_out(path):
            if storm["on"]:
                raise ServeLoadTransient("store brownout")
            return real(path)

        with ModelFleet.from_directory(
            fleet_dir,
            loader=browning_out,
            watch_min=3,
            watch_window=16,
            watch_threshold=0.5,
            canary_count=8,
        ) as fleet:
            coords = rng.random((4, 2))
            fleet.dispatch("alpha", coords)
            incumbent = load_artifact(fleet_dir / "alpha.json")
            refit = _refit(incumbent, marker=3)
            save_artifact(refit, fleet_dir / "alpha.json")
            (event,) = fleet.poll()
            assert event["action"] == "promote"
            # Post-promotion the artifact store browns out and the engine
            # is lost: dispatches degrade, the watch spikes, and the
            # promotion is rolled back.
            storm["on"] = True
            fleet.abandon("alpha")
            for _ in range(4):
                fleet.dispatch("alpha", coords)
            rows = {h.name: h for h in fleet.health()}
            assert rows["alpha"].rollbacks == 1
            assert not rows["alpha"].watching
            assert fleet.swap_history("alpha")[-1]["action"] == "rollback"
            # Rollback re-pinned the incumbent in memory AND on disk.
            assert rows["alpha"].digest == incumbent.digest
            storm["on"] = False
            assert load_artifact(fleet_dir / "alpha.json").digest == incumbent.digest
            # The rejected candidate was quarantined for forensics.
            assert list(fleet_dir.glob("alpha.json.quarantined*"))
            assert fleet.dispatch("alpha", coords).ok


class TestFleetHealthAndMetrics:
    def test_health_rows_cover_every_model(self, fleet_dir, rng):
        with ModelFleet.from_directory(fleet_dir) as fleet:
            fleet.dispatch("beta", rng.random((4, 2)))
            rows = fleet.health()
            assert [h.name for h in rows] == ["alpha", "beta", "gamma"]
            by_name = {h.name: h for h in rows}
            assert by_name["beta"].resident and by_name["beta"].verified
            assert by_name["beta"].source == "primary"
            assert by_name["alpha"].source == "cold"
            flat = by_name["beta"].row()
            assert flat["model"] == "beta" and flat["answered"] == 1
            assert len(flat["digest"]) == 12

    def test_fleet_metrics_flow_through_obs(self, fleet_dir, rng):
        from repro import obs

        registry = obs.MetricsRegistry("fleet-test")
        with obs.metrics_session(registry):
            with ModelFleet.from_directory(fleet_dir, resident_limit=1) as fleet:
                coords = rng.random((4, 2))
                fleet.dispatch("alpha", coords)
                fleet.dispatch("beta", coords)  # evicts alpha
                fleet.quarantine_model("beta")
                fleet.dispatch("beta", coords)  # unavailable
                fleet.poll()
        counters = registry.counters
        assert counters["serve.fleet.dispatches"].value == 3
        assert counters["serve.fleet.cold_loads"].value == 2
        assert counters["serve.fleet.evictions"].value >= 2
        assert counters["serve.fleet.unavailable"].value == 1
        assert counters["serve.fleet.unavailable.quarantined"].value == 1
        assert counters["serve.fleet.quarantined_models"].value == 1
        assert counters["serve.fleet.polls"].value == 1

    def test_repr(self, fleet_dir, rng):
        with ModelFleet.from_directory(fleet_dir, resident_limit=2) as fleet:
            fleet.dispatch("alpha", rng.random((4, 2)))
            assert repr(fleet) == "ModelFleet(models=3, resident=1/2)"
