"""Tests for shared utilities (repro._util)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import (
    as_float_matrix,
    as_generator,
    ceil_log2,
    format_table,
    log_levels,
    validate_labels,
    validate_weights,
)


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        assert as_generator(5).random() == as_generator(5).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen


class TestAsFloatMatrix:
    def test_rows(self):
        matrix = as_float_matrix([(1, 2), (3, 4)])
        assert matrix.shape == (2, 2)
        assert matrix.dtype == float

    def test_flat_reshaped_to_1d_points(self):
        assert as_float_matrix(np.array([1.0, 2.0])).shape == (2, 1)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            as_float_matrix(np.zeros((2, 2, 2)))

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            as_float_matrix([(float("inf"),)])


class TestValidators:
    def test_labels_hidden_allowed_only_when_asked(self):
        validate_labels([0, 1, -1], 3, allow_hidden=True)
        with pytest.raises(ValueError):
            validate_labels([0, 1, -1], 3, allow_hidden=False)

    def test_labels_shape(self):
        with pytest.raises(ValueError):
            validate_labels([0, 1], 3)

    def test_weights_default_units(self):
        assert (validate_weights(None, 4) == 1.0).all()

    def test_weights_positive(self):
        with pytest.raises(ValueError):
            validate_weights([1.0, -1.0], 2)
        with pytest.raises(ValueError):
            validate_weights([1.0, float("nan")], 2)


class TestLogHelpers:
    def test_ceil_log2(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(5) == 3
        assert ceil_log2(0.5) == 0

    def test_log_levels_bounds_recursion_depth(self):
        # Shrink factor 5/8 per level: depth <= log_{8/5} n + 2.
        assert log_levels(1) == 1
        for n in (10, 1_000, 1_000_000):
            depth = log_levels(n)
            assert (5 / 8) ** (depth - 2) * n <= 1.01


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [{"name": "a", "value": 1.23456}, {"name": "bb", "value": 2}]
        table = format_table(rows)
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in table  # floatfmt .4g
        assert len(lines) == 4

    def test_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        table = format_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_bool_rendering(self):
        table = format_table([{"ok": True}])
        assert "True" in table

    def test_missing_cells_blank(self):
        table = format_table([{"a": 1}, {}], columns=["a"])
        assert table.count("1") == 1
