"""Tests for the incremental threshold-error index (repro.core.errindex)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PointSet, solve_passive_1d, weighted_error
from repro.core.errindex import NEG_INF, OnlineThreshold1D, ThresholdErrorIndex
from repro.core.passive_1d import best_threshold, threshold_errors


class TestThresholdErrorIndex:
    def test_empty_index(self):
        index = ThresholdErrorIndex([1.0, 2.0])
        tau, err = index.best()
        assert err == 0.0
        assert index.num_inserted == 0

    def test_single_label1_point(self):
        index = ThresholdErrorIndex([1.0, 2.0, 3.0])
        index.insert(2.0, 1)
        # h^tau misclassifies the point iff 2.0 <= tau.
        assert index.error_at(NEG_INF) == 0.0
        assert index.error_at(1.0) == 0.0
        assert index.error_at(2.0) == 1.0
        assert index.error_at(3.0) == 1.0

    def test_single_label0_point(self):
        index = ThresholdErrorIndex([1.0, 2.0, 3.0])
        index.insert(2.0, 0, weight=2.5)
        # h^tau misclassifies iff 2.0 > tau.
        assert index.error_at(NEG_INF) == 2.5
        assert index.error_at(1.0) == 2.5
        assert index.error_at(2.0) == 0.0

    def test_best_matches_prefix_sum_solver(self, rng):
        values = rng.random(300)
        labels = (values > 0.6).astype(int)
        labels = np.where(rng.random(300) < 0.2, 1 - labels, labels)
        weights = rng.random(300) + 0.1
        index = ThresholdErrorIndex(values)
        index.extend(values, labels, weights)
        _tau, err = index.best()
        _tau2, expected = best_threshold(values, labels, weights)
        assert err == pytest.approx(expected)

    def test_error_curve_matches_threshold_errors(self, rng):
        values = rng.integers(0, 10, size=60).astype(float)
        labels = rng.integers(0, 2, size=60)
        index = ThresholdErrorIndex(values)
        index.extend(values, labels)
        taus, errors = threshold_errors(values, labels)
        for tau, expected in zip(taus, errors):
            assert index.error_at(float(tau)) == pytest.approx(expected)

    def test_duplicate_values(self):
        index = ThresholdErrorIndex([1.0, 1.0, 2.0])
        index.insert(1.0, 0)
        index.insert(1.0, 1)
        # h^1: value-1 points predicted 0 -> errs on the label-1 one.
        assert index.error_at(1.0) == 1.0
        # h^-inf: everything predicted 1 -> errs on the label-0 one.
        assert index.error_at(NEG_INF) == 1.0

    def test_query_between_candidates(self):
        index = ThresholdErrorIndex([1.0, 3.0])
        index.insert(1.0, 0)
        # tau = 2.0 behaves like the largest candidate <= 2.0, i.e. tau=1.
        assert index.error_at(2.0) == index.error_at(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdErrorIndex([float("inf")])
        index = ThresholdErrorIndex([1.0])
        with pytest.raises(ValueError):
            index.insert(1.0, 2)
        with pytest.raises(ValueError):
            index.insert(1.0, 1, weight=0.0)

    def test_accounting(self):
        index = ThresholdErrorIndex([1.0, 2.0])
        index.insert(1.0, 0, 2.0)
        index.insert(2.0, 1, 3.0)
        assert index.num_inserted == 2
        assert index.total_weight == 5.0
        assert "inserted=2" in repr(index)


class TestOnlineThreshold1D:
    def test_streaming_stays_optimal(self, rng):
        values = rng.random(200)
        labels = (values > 0.5).astype(int)
        labels = np.where(rng.random(200) < 0.25, 1 - labels, labels)
        learner = OnlineThreshold1D(values)
        for i in range(200):
            learner.observe(float(values[i]), int(labels[i]))
            if i % 40 == 39:
                seen = PointSet(values[: i + 1].reshape(-1, 1), labels[: i + 1])
                expected = solve_passive_1d(seen).optimal_error
                assert learner.current_error == pytest.approx(expected)
                achieved = weighted_error(seen, learner.classifier())
                assert achieved == pytest.approx(expected)
        assert learner.num_observations == 200

    def test_classifier_type(self):
        learner = OnlineThreshold1D([0.0, 1.0])
        learner.observe(0.0, 0)
        h = learner.classifier()
        assert h.classify((0.5,)) in (0, 1)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 1),
                          st.floats(0.1, 3.0)),
                min_size=1, max_size=25))
def test_index_minimum_equals_exact_solver(rows):
    """Property: segment-tree minimum == prefix-sum solver minimum."""
    values = [float(v) for v, _l, _w in rows]
    labels = [l for _v, l, _w in rows]
    weights = [w for _v, _l, w in rows]
    index = ThresholdErrorIndex(values)
    index.extend(values, labels, weights)
    _tau, err = index.best()
    _tau2, expected = best_threshold(values, labels, weights)
    assert err == pytest.approx(expected)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 1)),
                min_size=1, max_size=20))
def test_index_best_is_achievable(rows):
    """Property: the reported (tau, err) is achieved by the classifier."""
    values = np.asarray([float(v) for v, _l in rows])
    labels = np.asarray([l for _v, l in rows])
    index = ThresholdErrorIndex(values)
    index.extend(values, labels)
    tau, err = index.best()
    pred = (values > tau).astype(int)
    assert float((pred != labels).sum()) == pytest.approx(err)
