"""Tests for the Lemma 5 sampling machinery (repro.stats.estimation)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.estimation import (
    SamplingPlan,
    estimate_count,
    lemma5_sample_size,
    sample_with_replacement,
)


class TestLemma5SampleSize:
    def test_formula(self):
        # t >= ceil(max(mu/phi^2, 1/phi) * 3 ln(2/delta))
        phi, delta = 0.1, 0.05
        expected = math.ceil(max(1.0 / phi ** 2, 1.0 / phi) * 3 * math.log(2 / delta))
        assert lemma5_sample_size(phi, delta) == expected

    def test_mu_upper_reduces_size(self):
        assert lemma5_sample_size(0.01, 0.1, mu_upper=0.02) < \
            lemma5_sample_size(0.01, 0.1, mu_upper=1.0)

    def test_small_mu_uses_linear_regime(self):
        # With mu <= phi the 1/phi branch dominates.
        phi, delta = 0.2, 0.1
        expected = math.ceil((1.0 / phi) * 3 * math.log(2 / delta))
        assert lemma5_sample_size(phi, delta, mu_upper=0.01) == expected

    @pytest.mark.parametrize("phi", [0.0, -0.1, 1.5])
    def test_rejects_bad_phi(self, phi):
        with pytest.raises(ValueError):
            lemma5_sample_size(phi, 0.1)

    @pytest.mark.parametrize("delta", [0.0, -0.1, 1.5])
    def test_rejects_bad_delta(self, delta):
        with pytest.raises(ValueError):
            lemma5_sample_size(0.1, delta)

    def test_empirical_guarantee(self):
        """Monte-Carlo check of the lemma's deviation bound."""
        phi, delta, mu = 0.1, 0.2, 0.35
        t = lemma5_sample_size(phi, delta)
        gen = np.random.default_rng(0)
        failures = 0
        trials = 300
        for _ in range(trials):
            draws = gen.random(t) < mu
            if abs(draws.mean() - mu) >= phi:
                failures += 1
        assert failures / trials <= delta  # the bound is loose; this is safe


class TestSamplingPlan:
    def test_defaults(self):
        plan = SamplingPlan()
        assert plan.profile == "practical"

    def test_rejects_unknown_profile(self):
        with pytest.raises(ValueError):
            SamplingPlan(profile="fast")

    def test_rejects_bad_constant(self):
        with pytest.raises(ValueError):
            SamplingPlan(practical_constant=0.0)

    def test_theory_profile_is_much_larger(self):
        practical = SamplingPlan().level_sample_size(0.5, 0.01, 1000, 10)
        theory = SamplingPlan(profile="theory").level_sample_size(0.5, 0.01, 1000, 10)
        assert theory > 50 * practical

    def test_scales_inversely_with_epsilon_squared(self):
        plan = SamplingPlan()
        small = plan.level_sample_size(1.0, 0.01, 10_000, 10)
        large = plan.level_sample_size(0.25, 0.01, 10_000, 10)
        assert large == pytest.approx(16 * small, rel=0.05)

    def test_zero_population(self):
        assert SamplingPlan().level_sample_size(0.5, 0.1, 0, 5) == 0

    def test_grows_with_population_logarithmically(self):
        plan = SamplingPlan()
        s1 = plan.level_sample_size(0.5, 0.01, 1_000, 10)
        s2 = plan.level_sample_size(0.5, 0.01, 1_000_000, 10)
        assert s1 < s2 < 3 * s1


class TestSampling:
    def test_with_replacement_size(self, rng):
        draws = sample_with_replacement([1, 2, 3], 100, rng)
        assert len(draws) == 100
        assert set(np.unique(draws)) <= {1, 2, 3}

    def test_empty_population_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_with_replacement([], 1, rng)

    def test_deterministic_given_seed(self):
        a = sample_with_replacement(range(50), 20, 42)
        b = sample_with_replacement(range(50), 20, 42)
        assert (a == b).all()


class TestEstimateCount:
    def test_scaling(self):
        assert estimate_count(5, 10, 100) == 50.0

    def test_zero_sample_rejected(self):
        with pytest.raises(ValueError):
            estimate_count(0, 0, 10)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 100), st.integers(0, 100), st.integers(0, 10_000))
    def test_bounds(self, t, x, n):
        x = min(x, t)
        estimate = estimate_count(x, t, n)
        assert 0 <= estimate <= n
