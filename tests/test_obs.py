"""Tests for the instrumentation subsystem (repro.obs).

Covers the metric primitives, the contextvar-scoped session machinery, the
exporters, the hot-path integration invariants (``oracle.probes`` equals
``oracle.probes_used`` exactly), and the determinism guard: two identical
seeded active runs must produce identical counter/gauge/histogram values.
"""

from __future__ import annotations

import json

import pytest

from repro import LabelOracle, active_classify, obs, solve_passive
from repro.datasets.synthetic import width_controlled
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_RECORDER,
    Timer,
    metrics_session,
    recorder,
)


class TestPrimitives:
    def test_counter(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.incr()
        counter.incr(5)
        assert counter.value == 6

    def test_gauge_set_and_set_max(self):
        gauge = Gauge("g")
        assert gauge.value is None
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1
        gauge.set_max(0)
        assert gauge.value == 1
        gauge.set_max(7)
        assert gauge.value == 7

    def test_histogram_summary(self):
        hist = Histogram("h")
        assert hist.mean is None
        for value in (2.0, 4.0, 6.0):
            hist.observe(value)
        snap = hist.snapshot()
        expected_scalars = {"count": 3, "total": 12.0, "mean": 4.0,
                            "min": 2.0, "max": 6.0, "last": 6.0}
        assert {k: snap[k] for k in expected_scalars} == expected_scalars
        # Small-n histograms report *exact* nearest-rank quantiles and
        # carry the raw values for exact cross-process merging.
        assert snap["p50"] == 4.0
        assert snap["p90"] == snap["p99"] == snap["p999"] == 6.0
        assert snap["raw"] == [2.0, 4.0, 6.0]

    def test_timer_standalone(self):
        with Timer() as timer:
            pass
        assert timer.elapsed is not None and timer.elapsed >= 0.0

    def test_timer_reports_to_sink(self):
        seen = {}
        with Timer("t", sink=lambda name, s: seen.setdefault(name, s)):
            pass
        assert "t" in seen and seen["t"] >= 0.0


class TestHistogramQuantiles:
    """Quantile accuracy and cross-process merge fidelity."""

    @staticmethod
    def _exact_quantile(values, q):
        """Nearest-rank reference: smallest v with rank >= ceil(q*n)."""
        import math

        ordered = sorted(values)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    def test_exact_path_matches_nearest_rank_reference(self):
        import numpy as np

        rng = np.random.default_rng(3)
        values = [float(v) for v in rng.normal(5.0, 2.0, size=200)]
        hist = Histogram("h")
        for value in values:
            hist.observe(value)
        assert hist.exact
        for q in (0.5, 0.9, 0.99, 0.999):
            assert hist.quantile(q) == self._exact_quantile(values, q)

    def test_bucketed_path_within_one_bucket_width(self):
        """Acceptance: p50/p90/p99 within one log-bucket of the truth."""
        import numpy as np

        from repro.obs import EXACT_LIMIT, GROWTH

        rng = np.random.default_rng(11)
        values = [float(v) for v in rng.lognormal(0.0, 1.5, size=5000)]
        assert len(values) > EXACT_LIMIT
        hist = Histogram("h")
        for value in values:
            hist.observe(value)
        assert not hist.exact
        for q in (0.5, 0.9, 0.99):
            truth = self._exact_quantile(values, q)
            got = hist.quantile(q)
            assert truth / GROWTH <= got <= truth * GROWTH, (q, got, truth)

    def test_merged_quantiles_equal_single_process_exact_path(self):
        """Satellite regression: merge fidelity on the raw-value path."""
        values = [float(v) for v in range(100)]
        whole = Histogram("h")
        for value in values:
            whole.observe(value)
        left, right = Histogram("h"), Histogram("h")
        for value in values[::2]:
            left.observe(value)
        for value in values[1::2]:
            right.observe(value)
        merged = Histogram("h")
        merged.merge_summary(left.snapshot())
        merged.merge_summary(right.snapshot())
        got, want = merged.snapshot(), whole.snapshot()
        # Raw values are a multiset (merge order differs from observation
        # order); everything else — including every quantile — is equal.
        assert sorted(got.pop("raw")) == sorted(want.pop("raw"))
        got.pop("last"), want.pop("last")  # legitimately order-dependent
        assert got == want

    def test_merged_quantiles_equal_single_process_bucketed_path(self):
        import numpy as np

        rng = np.random.default_rng(7)
        values = [float(v) for v in rng.lognormal(0.0, 1.0, size=2000)]
        whole = Histogram("h")
        for value in values:
            whole.observe(value)
        parts = [Histogram("h") for _ in range(4)]
        for i, value in enumerate(values):
            parts[i % 4].observe(value)
        merged = Histogram("h")
        for part in parts:
            merged.merge_summary(part.snapshot())
        for q in (0.5, 0.9, 0.99, 0.999):
            assert merged.quantile(q) == whole.quantile(q)
        assert merged.count == whole.count
        assert merged.total == pytest.approx(whole.total)

    def test_negative_and_zero_values(self):
        hist = Histogram("h")
        for value in (-4.0, -2.0, 0.0, 0.0, 2.0, 4.0):
            hist.observe(value)
        assert hist.quantile(0.5) == -2.0 or hist.quantile(0.5) == 0.0
        assert hist.min == -4.0 and hist.max == 4.0
        # Force the spill and re-check the mirrored-bucket walk.
        from repro.obs import EXACT_LIMIT

        for _ in range(EXACT_LIMIT):
            hist.observe(-1.0)
        assert hist.quantile(0.5) < 0
        assert hist.quantile(0.999) > 0

    def test_cumulative_buckets_monotone_and_complete(self):
        import math

        hist = Histogram("h")
        for value in (-3.0, 0.0, 1.0, 5.0, 500.0):
            hist.observe(value)
        pairs = hist.cumulative_buckets()
        uppers = [u for u, _ in pairs]
        counts = [c for _, c in pairs]
        assert uppers == sorted(uppers)
        assert counts == sorted(counts)
        assert uppers[-1] == math.inf and counts[-1] == hist.count


class TestRegistry:
    def test_incr_and_counter_value(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.incr("a", 2)
        assert reg.counter_value("a") == 3
        assert reg.counter_value("missing") == 0
        assert reg.counter_value("missing", default=-1) == -1

    def test_gauges_and_histograms(self):
        reg = MetricsRegistry()
        reg.gauge("g", 5)
        reg.gauge_max("g", 3)
        assert reg.gauge_value("g") == 5
        assert reg.gauge_value("missing") is None
        reg.observe("h", 1.5)
        assert reg.histograms["h"].count == 1

    def test_timer_accumulates(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            pass
        with reg.timer("t"):
            pass
        assert reg.timers["t"].count == 2

    def test_nested_span_paths(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
            with reg.span("inner"):
                pass
        assert set(reg.spans) == {"outer", "outer/inner"}
        assert reg.spans["outer/inner"].count == 2
        assert reg._span_stack == []

    def test_span_stack_pops_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("outer"):
                raise RuntimeError("boom")
        assert reg._span_stack == []
        assert reg.spans["outer"].count == 1

    def test_snapshot_is_json_serializable_and_sorted(self):
        reg = MetricsRegistry("run")
        reg.incr("z")
        reg.incr("a")
        snap = reg.snapshot()
        assert snap["session"] == "run"
        assert list(snap["counters"]) == ["a", "z"]
        json.dumps(snap)  # must not raise

    def test_reset(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.gauge("g", 1)
        reg.reset()
        assert not reg.counters and not reg.gauges


class TestSessionScoping:
    def test_default_recorder_is_noop(self):
        rec = recorder()
        assert rec is NULL_RECORDER
        assert not rec.enabled
        assert not obs.enabled()
        # All operations are harmless no-ops.
        rec.incr("x")
        rec.gauge("x", 1)
        with rec.span("s"):
            with rec.timer("t"):
                pass

    def test_session_activates_and_restores(self):
        assert recorder() is NULL_RECORDER
        with metrics_session(name="outer") as reg:
            assert recorder() is reg
            assert obs.enabled()
            recorder().incr("hit")
        assert recorder() is NULL_RECORDER
        assert reg.counter_value("hit") == 1

    def test_nested_sessions_shadow_without_leaking(self):
        with metrics_session(name="outer") as outer:
            recorder().incr("which")
            with metrics_session(name="inner") as inner:
                assert recorder() is inner
                recorder().incr("which")
            assert recorder() is outer
            recorder().incr("which")
        assert outer.counter_value("which") == 2
        assert inner.counter_value("which") == 1

    def test_session_accepts_existing_registry(self):
        reg = MetricsRegistry("mine")
        with metrics_session(reg) as active:
            assert active is reg
            recorder().incr("a")
        with metrics_session(reg):
            recorder().incr("a")
        assert reg.counter_value("a") == 2


class TestExport:
    @pytest.fixture
    def registry(self):
        reg = MetricsRegistry("exp")
        reg.incr("oracle.probes", 7)
        reg.gauge("active.chain_width", 4)
        reg.observe("active.chain_size", 10)
        with reg.span("active"):
            pass
        return reg

    def test_to_json_roundtrip(self, registry, tmp_path):
        path = tmp_path / "m.json"
        obs.to_json(registry, path)
        doc = json.loads(path.read_text())
        assert doc["counters"]["oracle.probes"] == 7
        assert doc["gauges"]["active.chain_width"] == 4
        assert doc["spans"]["active"]["count"] == 1

    def test_to_csv(self, registry, tmp_path):
        path = tmp_path / "m.csv"
        obs.to_csv(registry, path)
        lines = path.read_text().splitlines()
        assert lines[0] == "kind,name,field,value"
        assert "counter,oracle.probes,value,7" in lines
        assert any(line.startswith("span,active,count,") for line in lines)

    def test_export_file_dispatches_on_extension(self, registry, tmp_path):
        obs.export_file(registry, tmp_path / "a.csv")
        obs.export_file(registry, tmp_path / "a.json")
        assert (tmp_path / "a.csv").read_text().startswith("kind,")
        json.loads((tmp_path / "a.json").read_text())

    def test_report_renders_tables(self, registry):
        text = obs.report(registry)
        assert "oracle.probes" in text
        assert "active.chain_size" in text
        assert "phase" in text

    def test_report_empty_registry(self):
        assert "no metrics" in obs.report(MetricsRegistry())


def _seeded_run(seed: int = 11):
    """One fully-seeded active run inside a metrics session."""
    points = width_controlled(300, 4, noise=0.1, rng=7)
    oracle = LabelOracle(points)
    with metrics_session(name="det") as reg:
        active_classify(points.with_hidden_labels(), oracle,
                        epsilon=0.8, rng=seed)
    return reg, oracle


class TestPipelineIntegration:
    def test_probe_counter_matches_oracle_exactly(self):
        reg, oracle = _seeded_run()
        assert reg.counter_value("oracle.probes") == oracle.probes_used
        assert reg.counter_value("oracle.requests") == oracle.total_requests
        assert (reg.counter_value("oracle.requests")
                == reg.counter_value("oracle.probes")
                + reg.counter_value("oracle.dedup_hits"))

    def test_expected_metrics_present(self):
        reg, _oracle = _seeded_run()
        snap = reg.snapshot()
        assert snap["gauges"]["active.chain_width"] == 4
        assert snap["gauges"]["active.recursion_depth"] >= 1
        assert snap["counters"]["active1d.levels"] > 0
        assert "active" in snap["spans"]
        assert "active/chain_decompose" in snap["spans"]
        assert any(path.startswith("active/passive_solve")
                   for path in snap["spans"])

    def test_budget_gauge_tracks_headroom(self):
        points = width_controlled(50, 2, noise=0.1, rng=3)
        oracle = LabelOracle(points, budget=10)
        with metrics_session() as reg:
            oracle.probe_many(range(10))
        assert reg.gauge_value("oracle.budget_remaining") == 0

    def test_passive_counters(self):
        points = width_controlled(200, 3, noise=0.1, rng=5)
        with metrics_session() as reg:
            result = solve_passive(points)
        assert reg.gauge_value("passive.num_contending") == result.num_contending
        assert reg.gauge_value("passive.optimal_error") == result.optimal_error
        assert reg.counter_value("flow.dinic.calls") == 1

    def test_disabled_path_records_nothing(self):
        probe = MetricsRegistry("probe")
        points = width_controlled(100, 2, noise=0.1, rng=2)
        oracle = LabelOracle(points)
        active_classify(points.with_hidden_labels(), oracle,
                        epsilon=0.8, rng=1)
        with metrics_session(probe):
            pass  # pipeline ran OUTSIDE any session
        assert not probe.counters and not probe.spans


class TestDeterminism:
    def test_identical_seeded_runs_produce_identical_metrics(self):
        """Counters/gauges/histograms are pure functions of a seeded run."""
        first, _ = _seeded_run(seed=11)
        second, _ = _seeded_run(seed=11)
        a, b = first.snapshot(), second.snapshot()
        assert a["counters"] == b["counters"]
        assert a["gauges"] == b["gauges"]
        assert a["histograms"] == b["histograms"]
        # Same span tree and call counts (durations legitimately differ).
        assert list(a["spans"]) == list(b["spans"])
        assert ([s["count"] for s in a["spans"].values()]
                == [s["count"] for s in b["spans"].values()])

    def test_different_seeds_may_differ_but_stay_consistent(self):
        reg, oracle = _seeded_run(seed=99)
        assert reg.counter_value("oracle.probes") == oracle.probes_used
