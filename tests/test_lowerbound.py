"""Tests for the Section 6 lower-bound machinery (repro.core.lowerbound)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConstantClassifier,
    DeterministicPairProber,
    ThresholdClassifier,
    adversarial_family,
    adversarial_input,
    error_count,
    evaluate_on_family,
    optimal_error_of_family_input,
    solve_passive_1d,
    theoretical_nonoptcnt_lower_bound,
    theoretical_totalcost,
)


class TestAdversarialInputs:
    def test_default_labels_alternate(self):
        ps = adversarial_input(8, 1, "00")
        # Pair (1,2) flipped to 0,0; pairs (3,4),(5,6),(7,8) normal (1,0).
        assert list(ps.labels) == [0, 0, 1, 0, 1, 0, 1, 0]

    def test_11_input(self):
        ps = adversarial_input(8, 2, "11")
        assert list(ps.labels) == [1, 0, 1, 1, 1, 0, 1, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            adversarial_input(7, 1, "00")  # odd n
        with pytest.raises(ValueError):
            adversarial_input(2, 1, "00")  # n < 4
        with pytest.raises(ValueError):
            adversarial_input(8, 5, "00")  # pair out of range
        with pytest.raises(ValueError):
            adversarial_input(8, 1, "01")  # bad kind

    def test_family_size_is_n(self):
        family = adversarial_family(10)
        assert len(family) == 10

    def test_every_input_has_optimal_error_half_minus_one(self):
        """Section 6.1: k* = n/2 - 1 for every family member."""
        n = 12
        for _kind, _pair, points in adversarial_family(n):
            assert solve_passive_1d(points).optimal_error == n // 2 - 1
            assert optimal_error_of_family_input(n) == n // 2 - 1

    def test_lemma21_no_classifier_optimal_for_both(self):
        """Lemma 21: no threshold is optimal for P_00(i) and P_11(i)."""
        n = 10
        for i in range(1, n // 2 + 1):
            p00 = adversarial_input(n, i, "00")
            p11 = adversarial_input(n, i, "11")
            optimal = n // 2 - 1
            for tau in [float("-inf")] + [float(v) for v in range(1, n + 1)]:
                h = ThresholdClassifier(tau)
                both = (error_count(p00, h) == optimal
                        and error_count(p11, h) == optimal)
                assert not both, f"tau={tau} optimal for both at i={i}"


class TestDeterministicPairProber:
    def test_rejects_duplicate_pairs(self):
        with pytest.raises(ValueError):
            DeterministicPairProber((1, 1), ConstantClassifier(0))

    def test_catches_anomaly_and_stops(self):
        prober = DeterministicPairProber((3, 1, 2), ConstantClassifier(0))
        probes, errs = prober.run(8, "00", 1)
        assert probes == 2  # probed pair 3 then pair 1
        assert not errs

    def test_exhausts_sequence_and_falls_back(self):
        prober = DeterministicPairProber((1,), ConstantClassifier(0))
        # Anomaly at pair 4, never probed; fallback all-0.
        probes, errs = prober.run(8, "00", 4)
        assert probes == 1
        assert not errs  # all-0 IS optimal for a 00-input
        probes, errs = prober.run(8, "11", 4)
        assert probes == 1
        assert errs  # all-0 is non-optimal for a 11-input

    def test_invalid_pair_in_sequence(self):
        prober = DeterministicPairProber((9,), ConstantClassifier(0))
        with pytest.raises(ValueError):
            prober.run(8, "00", 1)


class TestFamilyEvaluation:
    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_totalcost_matches_closed_form(self, n):
        """Lemma 19 accounting (with the +ell sign fix) holds exactly."""
        for ell in range(0, n // 2 + 1):
            prober = DeterministicPairProber(
                tuple(range(1, ell + 1)), ConstantClassifier(0))
            evaluation = evaluate_on_family(prober, n)
            assert evaluation.totalcost == theoretical_totalcost(n, ell)

    @pytest.mark.parametrize("n", [8, 16])
    def test_nonoptcnt_lower_bound_holds(self, n):
        """Eq. (33): any prober errs on >= n/2 - ell inputs."""
        for ell in (0, n // 4, n // 2):
            prober = DeterministicPairProber(
                tuple(range(1, ell + 1)), ConstantClassifier(0))
            evaluation = evaluate_on_family(prober, n)
            assert evaluation.nonoptcnt >= \
                theoretical_nonoptcnt_lower_bound(n, ell)

    def test_order_of_probes_does_not_change_totals(self):
        n = 16
        a = DeterministicPairProber((1, 2, 3, 4), ConstantClassifier(0))
        b = DeterministicPairProber((4, 3, 2, 1), ConstantClassifier(0))
        assert evaluate_on_family(a, n).totalcost == \
            evaluate_on_family(b, n).totalcost

    def test_accurate_prober_pays_quadratic(self):
        """The Theorem 1 punchline: accuracy forces Omega(n^2) total cost."""
        n = 64
        full = DeterministicPairProber(
            tuple(range(1, n // 2 + 1)), ConstantClassifier(0))
        evaluation = evaluate_on_family(full, n)
        assert evaluation.nonoptcnt == 0
        assert evaluation.totalcost >= n * n / 8  # Lemma 19's bound

    def test_per_input_records(self):
        prober = DeterministicPairProber((1,), ConstantClassifier(0))
        evaluation = evaluate_on_family(prober, 8)
        assert len(evaluation.per_input) == 8


class TestRandomizedPairProber:
    """Corollary 20 / Appendix D: mixtures of deterministic probers."""

    @staticmethod
    def _prober(length: int) -> DeterministicPairProber:
        return DeterministicPairProber(tuple(range(1, length + 1)),
                                       ConstantClassifier(0))

    def test_mixture_expectations_are_averages(self):
        from repro import evaluate_on_family
        from repro.core.lowerbound import RandomizedPairProber

        n = 16
        a, b = self._prober(2), self._prober(8)
        mixture = RandomizedPairProber((a, b), (0.25, 0.75))
        nonopt, cost = mixture.expected_performance(n)
        ea, eb = evaluate_on_family(a, n), evaluate_on_family(b, n)
        assert nonopt == pytest.approx(0.25 * ea.nonoptcnt + 0.75 * eb.nonoptcnt)
        assert cost == pytest.approx(0.25 * ea.totalcost + 0.75 * eb.totalcost)

    def test_corollary20_on_accurate_mixture(self):
        from repro.core.lowerbound import RandomizedPairProber

        n = 64
        full = self._prober(n // 2)
        mixture = RandomizedPairProber((full,), (1.0,))
        nonopt, cost = mixture.expected_performance(n)
        assert nonopt == 0
        assert mixture.verify_corollary20(n)
        assert cost >= 3 * n * n / 400

    def test_corollary20_vacuous_for_sloppy_mixture(self):
        from repro.core.lowerbound import RandomizedPairProber

        n = 32
        lazy = self._prober(0)
        mixture = RandomizedPairProber((lazy,), (1.0,))
        # E[nonoptcnt] = n/2 > n/3: hypothesis unmet, check passes trivially.
        assert mixture.verify_corollary20(n)

    def test_validation(self):
        from repro.core.lowerbound import RandomizedPairProber

        with pytest.raises(ValueError):
            RandomizedPairProber((), ())
        with pytest.raises(ValueError):
            RandomizedPairProber((self._prober(1),), (0.5,))
        with pytest.raises(ValueError):
            RandomizedPairProber((self._prober(1), self._prober(2)), (1.0,))
        with pytest.raises(ValueError):
            RandomizedPairProber((self._prober(1),), (-1.0,))

    def test_every_accurate_mixture_pays_quadratic(self):
        """Sweep mixtures over prober lengths; the corollary always holds."""
        from repro.core.lowerbound import RandomizedPairProber

        n = 48
        gen = np.random.default_rng(1)
        for _ in range(10):
            lengths = gen.integers(0, n // 2 + 1, size=3)
            raw = gen.random(3)
            probabilities = tuple((raw / raw.sum()).tolist())
            mixture = RandomizedPairProber(
                tuple(self._prober(int(l)) for l in lengths), probabilities)
            assert mixture.verify_corollary20(n)


class TestClosedForms:
    def test_totalcost_range_check(self):
        with pytest.raises(ValueError):
            theoretical_totalcost(8, 5)

    def test_nonoptcnt_never_negative(self):
        assert theoretical_nonoptcnt_lower_bound(8, 4) == 0
        assert theoretical_nonoptcnt_lower_bound(8, 1) == 3
