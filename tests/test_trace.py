"""Tests for timeline tracing (repro.obs.trace + registry trace buffer).

Covers span event identity/parentage, wall-aligned timestamps, exception
safety, instant events, the Chrome trace-event round trip, cross-process
re-rooting through ``pool_map``, and the resilience integration: retry
attempts as sibling spans, fault instant events, and kill/resume runs
producing well-formed trace files.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.obs import (
    MetricsRegistry,
    TraceContext,
    chrome_trace_document,
    load_trace_events,
    metrics_session,
    recorder,
    to_chrome_trace,
)
from repro.parallel.pool import pool_map
from repro.resilience import (
    FaultSpec,
    FaultyOracle,
    OracleTransientError,
    ResilientOracle,
    RetryPolicy,
)


def _span_events(registry):
    return [e for e in registry.trace_events if e["cat"] == "span"]


class TestSpanEvents:
    def test_nested_spans_record_identity_and_parentage(self):
        reg = MetricsRegistry("t", trace=True)
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        inner, outer = reg.trace_events  # inner closes (and records) first
        assert inner["path"] == "outer/inner"
        assert outer["path"] == "outer"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert inner["pid"] == outer["pid"] == os.getpid()
        assert inner["dur"] >= 0 and outer["dur"] >= inner["dur"]

    def test_timestamps_are_wall_aligned(self):
        before = time.time_ns()
        reg = MetricsRegistry("t", trace=True)
        with reg.span("s"):
            pass
        after = time.time_ns()
        (event,) = reg.trace_events
        assert before <= event["ts"] <= event["ts"] + event["dur"] <= after

    def test_child_interval_nested_within_parent(self):
        reg = MetricsRegistry("t", trace=True)
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        inner, outer = reg.trace_events
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_span_closed_on_exception_with_error_attr(self):
        reg = MetricsRegistry("t", trace=True)
        with pytest.raises(RuntimeError):
            with reg.span("doomed"):
                raise RuntimeError("boom")
        (event,) = reg.trace_events
        assert event["args"]["error"] == "RuntimeError"
        assert event["dur"] is not None
        assert reg._span_stack == []

    def test_set_attr_lands_in_event_args(self):
        reg = MetricsRegistry("t", trace=True)
        with reg.span("s") as span:
            span.set_attr("n", 42)
        assert reg.trace_events[0]["args"] == {"n": 42}

    def test_instant_event_parented_to_open_span(self):
        reg = MetricsRegistry("t", trace=True)
        with reg.span("phase"):
            reg.event("fault.transient", index=7)
        mark, span = reg.trace_events
        assert mark["cat"] == "mark" and mark["dur"] is None
        assert mark["path"] == "phase"
        assert mark["parent"] == span["id"]
        assert mark["args"] == {"index": 7}

    def test_no_trace_no_buffer(self):
        reg = MetricsRegistry("t")  # trace off
        with reg.span("s"):
            reg.event("mark")
        assert reg.trace_events == []
        assert reg.spans["s"].count == 1  # duration histograms still work

    def test_trace_limit_drops_and_counts(self):
        reg = MetricsRegistry("t", trace=True, trace_limit=3)
        for _ in range(5):
            with reg.span("s"):
                pass
        assert len(reg.trace_events) == 3
        assert reg.trace_dropped == 2

    def test_session_trace_flag_upgrades_registry(self):
        reg = MetricsRegistry("t")
        with metrics_session(reg, trace=True):
            with recorder().span("s"):
                pass
        assert reg.trace and len(reg.trace_events) == 1


class TestChromeRoundTrip:
    def _traced_registry(self):
        reg = MetricsRegistry("t", trace=True)
        with reg.span("outer") as span:
            span.set_attr("k", "v")
            reg.event("mark", index=1)
            with reg.span("inner"):
                pass
        return reg

    def test_document_structure(self):
        reg = self._traced_registry()
        doc = chrome_trace_document(reg)
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases.count("M") == 1  # one process_name metadata track
        assert phases.count("X") == 2 and phases.count("i") == 1
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
        assert doc["otherData"]["format"].startswith("repro.obs.trace/")

    def test_round_trip_preserves_events(self, tmp_path):
        reg = self._traced_registry()
        path = tmp_path / "trace.json"
        to_chrome_trace(reg, path)
        loaded = load_trace_events(path)
        original = sorted(reg.trace_events, key=lambda e: e["ts"])
        assert len(loaded) == len(original)
        for got, want in zip(loaded, original):
            assert got["path"] == want["path"]
            assert got["id"] == want["id"]
            assert got["parent"] == want["parent"]
            assert got["dur"] == want["dur"]
            assert got["ts"] == want["ts"]
            assert got["pid"] == want["pid"]
        # The mark's payload survives the args round trip.
        marks = [e for e in loaded if e["cat"] == "mark"]
        assert marks and marks[0]["args"] == {"index": 1}

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_trace_events(bad)
        notrace = tmp_path / "notrace.json"
        notrace.write_text(json.dumps({"rows": []}))
        with pytest.raises(ValueError, match="not a Chrome trace"):
            load_trace_events(notrace)

    def test_foreign_bare_array_accepted(self, tmp_path):
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps([
            {"ph": "X", "name": "work", "ts": 5.0, "dur": 2.0,
             "pid": 1, "tid": 1},
        ]))
        (event,) = load_trace_events(foreign)
        assert event["path"] == "work" and event["dur"] == 2000


class TestMergeReRooting:
    def test_worker_snapshot_rerooted_under_dispatching_span(self):
        worker = MetricsRegistry("worker", trace=True)
        with worker.span("chain[0]"):
            pass
        snapshot = worker.snapshot()

        parent = MetricsRegistry("parent", trace=True)
        with parent.span("sample_chains") as dispatch:
            parent.merge_snapshot(snapshot, span_prefix="sample_chains")
        merged = [e for e in parent.trace_events
                  if e["path"] == "sample_chains/chain[0]"]
        assert len(merged) == 1
        assert merged[0]["parent"] == dispatch.span_id
        # Worker identity (pid, timestamps) is preserved untouched.
        assert merged[0]["pid"] == worker.trace_events[0]["pid"]
        assert merged[0]["ts"] == worker.trace_events[0]["ts"]

    def test_merge_folds_trace_dropped(self):
        worker = MetricsRegistry("worker", trace=True, trace_limit=1)
        for _ in range(3):
            with worker.span("s"):
                pass
        parent = MetricsRegistry("parent", trace=True)
        parent.merge_snapshot(worker.snapshot())
        assert parent.trace_dropped == 2

    def test_merge_into_untraced_registry_ignores_trace(self):
        worker = MetricsRegistry("worker", trace=True)
        with worker.span("s"):
            pass
        parent = MetricsRegistry("parent")  # no tracing
        parent.merge_snapshot(worker.snapshot(), span_prefix="root")
        assert parent.trace_events == []
        assert parent.spans["root/s"].count == 1


def _traced_task(x: int) -> int:
    """Worker-side task: one span plus one histogram observation."""
    rec = recorder()
    with rec.span(f"task[{x}]"):
        rec.observe("task.value", float(x))
    return 2 * x


class TestCrossProcessPropagation:
    def test_trace_context_mirrors_session(self):
        assert TraceContext.current() == TraceContext()
        with metrics_session(name="s", trace=True) as reg:
            with reg.span("dispatch"):
                ctx = TraceContext.current()
        assert ctx == TraceContext(capture=True, trace=True,
                                   parent_path="dispatch")

    def test_pool_map_reroots_worker_span_trees(self):
        with metrics_session(name="parent", trace=True) as reg:
            with reg.span("dispatch") as dispatch:
                results = pool_map(_traced_task, [0, 1, 2], workers=2)
        assert results == [0, 2, 4]
        task_events = [e for e in _span_events(reg)
                       if e["path"].startswith("dispatch/task[")]
        assert {e["path"] for e in task_events} == {
            "dispatch/task[0]", "dispatch/task[1]", "dispatch/task[2]"}
        assert all(e["parent"] == dispatch.span_id for e in task_events)
        assert all(e["pid"] != os.getpid() for e in task_events)

    def test_worker_merged_quantiles_equal_serial(self):
        """Regression: quantiles must not depend on the worker count."""
        tasks = list(range(40))
        with metrics_session(name="serial") as serial_reg:
            pool_map(_traced_task, tasks, workers=1)
        with metrics_session(name="pooled") as pooled_reg:
            pool_map(_traced_task, tasks, workers=2)
        serial = serial_reg.histograms["task.value"].snapshot()
        pooled = pooled_reg.histograms["task.value"].snapshot()
        for key in ("count", "total", "min", "max",
                    "p50", "p90", "p99", "p999"):
            assert serial[key] == pooled[key], key


class _FlakyOracle:
    """Fails the first probe of every index with a transient error."""

    def __init__(self):
        self.seen = set()

    def probe(self, index: int) -> int:
        if index not in self.seen:
            self.seen.add(index)
            raise OracleTransientError(f"first probe of {index} failed")
        return 1


class TestResilienceTracing:
    def test_retry_attempts_appear_as_sibling_spans(self):
        oracle = ResilientOracle(_FlakyOracle(), RetryPolicy(max_attempts=3))
        with metrics_session(name="r", trace=True) as reg:
            with reg.span("probing") as parent:
                assert oracle.probe(4) == 1
                assert oracle.probe(9) == 1
        retries = [e for e in _span_events(reg)
                   if e["name"].startswith("retry[")]
        assert [e["path"] for e in retries] == ["probing/retry[2]"] * 2
        # Siblings: both parented to the phase span, not to each other.
        assert all(e["parent"] == parent.span_id for e in retries)
        assert retries[0]["args"]["index"] == 4
        assert retries[1]["args"]["index"] == 9

    def test_failed_retry_span_closes_with_error(self):
        class _AlwaysDown:
            def probe(self, index: int) -> int:
                raise OracleTransientError("down")

        oracle = ResilientOracle(_AlwaysDown(), RetryPolicy(max_attempts=2))
        from repro.resilience import ProbeRetriesExhausted

        with metrics_session(name="r", trace=True) as reg:
            with pytest.raises(ProbeRetriesExhausted):
                oracle.probe(0)
        (retry,) = [e for e in _span_events(reg)
                    if e["name"] == "retry[2]"]
        assert retry["args"]["error"] == "OracleTransientError"

    def test_fault_injection_emits_instant_events(self):
        class _Ones:
            def probe(self, index: int) -> int:
                return 1

        faulty = FaultyOracle(_Ones(), FaultSpec(dead_indices=(3,)))
        with metrics_session(name="f", trace=True) as reg:
            from repro.resilience import OraclePermanentError

            with pytest.raises(OraclePermanentError):
                faulty.probe(3)
        marks = [e for e in reg.trace_events if e["cat"] == "mark"]
        assert [m["name"] for m in marks] == ["fault.dead"]
        assert marks[0]["args"] == {"index": 3}


@pytest.fixture
def labeled_file(tmp_path):
    data = tmp_path / "pts.json"
    assert cli_main(["generate", str(data), "--kind", "width", "--n", "120",
                     "--width", "2", "--seed", "3"]) == 0
    return data


class TestCLITracing:
    def test_active_trace_out_produces_valid_chrome_trace(
            self, labeled_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = cli_main(["active", str(labeled_file), "--epsilon", "0.8",
                         "--workers", "2", "--trace-out", str(trace_path)])
        assert code == 0
        events = load_trace_events(trace_path)
        paths = {e["path"] for e in events}
        assert any(p.startswith("active/sample_chains/chain[")
                   for p in paths)
        # Every parent referenced by an event exists in the file.
        ids = {e["id"] for e in events}
        assert all(e["parent"] in ids for e in events
                   if e["parent"] is not None)

    def test_trace_written_even_when_command_fails(
            self, labeled_file, tmp_path):
        trace_path = tmp_path / "trace.json"
        from repro.resilience import ProbeRetriesExhausted

        with pytest.raises(ProbeRetriesExhausted):
            cli_main(["active", str(labeled_file), "--epsilon", "0.8",
                      "--retry-max", "2",
                      "--inject-faults", "transient=1.0,seed=1",
                      "--trace-out", str(trace_path)])
        events = load_trace_events(trace_path)  # well-formed despite crash
        assert any(e["name"].startswith("retry[") for e in events)
        assert any(e["cat"] == "mark" and e["name"] == "fault.transient"
                   for e in events)

    def test_checkpoint_resume_traces_are_well_formed(
            self, labeled_file, tmp_path):
        checkpoint = tmp_path / "ckpt.json"
        first_trace = tmp_path / "first.json"
        resumed_trace = tmp_path / "resumed.json"
        assert cli_main(["active", str(labeled_file), "--epsilon", "0.8",
                         "--checkpoint", str(checkpoint),
                         "--trace-out", str(first_trace)]) == 0
        assert cli_main(["active", str(labeled_file), "--epsilon", "0.8",
                         "--checkpoint", str(checkpoint), "--resume",
                         "--trace-out", str(resumed_trace)]) == 0
        for path in (first_trace, resumed_trace):
            events = load_trace_events(path)
            assert any(e["path"] == "active" for e in events)
            assert all(e["dur"] is not None or e["cat"] == "mark"
                       for e in events)

    def test_unwritable_trace_out_exits_2_before_running(
            self, labeled_file, tmp_path, capsys):
        code = cli_main(["active", str(labeled_file),
                         "--trace-out", str(tmp_path / "no" / "t.json")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_metrics_out_directory_is_rejected(self, labeled_file, tmp_path,
                                               capsys):
        code = cli_main(["passive", str(labeled_file),
                         "--metrics-out", str(tmp_path)])
        assert code == 2
        assert "is a directory" in capsys.readouterr().err

    def test_fuzz_accepts_trace_out(self, tmp_path, capsys):
        trace_path = tmp_path / "fuzz_trace.json"
        code = cli_main(["fuzz", "--runs", "2", "--size", "16",
                         "--trace-out", str(trace_path)])
        assert code == 0
        load_trace_events(trace_path)  # must parse as a Chrome trace


class TestExperimentRunnerTracing:
    def test_runner_trace_out_merges_labeled_experiments(self, tmp_path):
        from repro.experiments.runner import main as runner_main

        trace_path = tmp_path / "exp.json"
        code = runner_main(["width_profile", "--trace-out", str(trace_path)])
        assert code == 0
        events = load_trace_events(trace_path)
        assert all(e["path"].startswith("width_profile")
                   for e in events if e["path"])
