"""Tests for the greedy closure repairs (repro.baselines.closure_repair)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PointSet, repair_labels
from repro.baselines.closure_repair import (
    closure_repair,
    downward_closure_labels,
    upward_closure_labels,
)
from repro.core.classifier import is_monotone_assignment
from repro.datasets.synthetic import planted_monotone


class TestClosureSweeps:
    def test_upward_promotes(self, tiny_2d):
        # Labels [1, 0, 0, 1]: (1,1) and (2,0) sit above the label-1 (0,0).
        up = upward_closure_labels(tiny_2d)
        assert list(up) == [1, 1, 1, 1]

    def test_downward_demotes(self, tiny_2d):
        down = downward_closure_labels(tiny_2d)
        assert list(down) == [0, 0, 0, 1]

    def test_monotone_input_untouched(self, monotone_2d):
        assert (upward_closure_labels(monotone_2d)
                == monotone_2d.labels).all()
        assert (downward_closure_labels(monotone_2d)
                == monotone_2d.labels).all()

    def test_chain_propagation(self):
        """Promotion cascades transitively along a chain."""
        ps = PointSet([(float(i),) for i in range(5)], [1, 0, 0, 0, 0])
        assert list(upward_closure_labels(ps)) == [1, 1, 1, 1, 1]
        assert list(downward_closure_labels(ps)) == [0, 0, 0, 0, 0]


class TestClosureRepair:
    def test_result_is_monotone(self):
        gen = np.random.default_rng(0)
        for seed in range(10):
            n = int(gen.integers(3, 40))
            ps = PointSet(gen.integers(0, 4, size=(n, 2)).astype(float),
                          gen.integers(0, 2, size=n))
            result = closure_repair(ps)
            assert is_monotone_assignment(ps, result.labels)

    def test_cost_upper_bounds_exact_repair(self):
        for seed in range(10):
            ps = planted_monotone(80, 2, noise=0.25, rng=seed,
                                  weights="random")
            greedy = closure_repair(ps)
            exact = repair_labels(ps)
            assert greedy.repair_weight >= exact.repair_weight - 1e-9

    def test_greedy_is_strictly_suboptimal_somewhere(self):
        """The gap the min-cut repair closes actually exists."""
        found = False
        for seed in range(40):
            gen = np.random.default_rng(seed)
            n = 20
            ps = PointSet(gen.integers(0, 3, size=(n, 2)).astype(float),
                          gen.integers(0, 2, size=n), gen.random(n) + 0.1)
            if closure_repair(ps).repair_weight > \
                    repair_labels(ps).repair_weight + 1e-9:
                found = True
                break
        assert found

    def test_direction_choice(self):
        # Heavy 1s: demoting them is costly; promotion should win.
        ps = PointSet([(0.0,), (1.0,), (2.0,)], [1, 0, 1],
                      [10.0, 1.0, 10.0])
        result = closure_repair(ps)
        assert result.direction == "up"
        assert result.repair_weight == 1.0

    def test_accounting(self, tiny_2d):
        result = closure_repair(tiny_2d)
        assert result.num_flips == \
            int((result.labels != tiny_2d.labels).sum())


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 20), st.integers(0, 10_000))
def test_both_sweeps_always_monotone(n, seed):
    """Property: closure outputs are monotone on arbitrary labelings."""
    gen = np.random.default_rng(seed)
    ps = PointSet(gen.integers(0, 4, size=(n, 2)).astype(float),
                  gen.integers(0, 2, size=n))
    assert is_monotone_assignment(ps, upward_closure_labels(ps))
    assert is_monotone_assignment(ps, downward_closure_labels(ps))
