"""Tests for chain decompositions (repro.poset.chains)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PointSet
from repro.datasets.synthetic import width_controlled
from repro.poset.chains import (
    ChainDecomposition,
    greedy_chain_decomposition,
    is_valid_chain_decomposition,
    matching_chain_decomposition,
    minimum_chain_decomposition,
    patience_chain_decomposition,
)
from repro.poset.width import brute_force_width


def _random_points(seed: int, n: int, dim: int, grid: int = 0) -> PointSet:
    gen = np.random.default_rng(seed)
    if grid:
        coords = gen.integers(0, grid, size=(n, dim)).astype(float)
    else:
        coords = gen.random((n, dim))
    return PointSet(coords, [0] * n)


class TestMatchingDecomposition:
    def test_single_point(self):
        ps = PointSet([(0.0, 0.0)], [0])
        d = matching_chain_decomposition(ps)
        assert d.num_chains == 1
        assert d.chains == [[0]]

    def test_empty(self):
        ps = PointSet.from_points([])
        assert matching_chain_decomposition(ps).num_chains == 0

    def test_total_order_is_one_chain(self):
        ps = PointSet([(float(i),) for i in range(10)], [0] * 10)
        d = matching_chain_decomposition(ps)
        assert d.num_chains == 1
        assert is_valid_chain_decomposition(ps, d)

    def test_antichain_gives_n_chains(self):
        ps = PointSet([(float(i), float(-i)) for i in range(6)], [0] * 6)
        d = matching_chain_decomposition(ps)
        assert d.num_chains == 6

    def test_duplicates_form_chains(self):
        ps = PointSet([(1.0, 1.0)] * 4, [0] * 4)
        d = matching_chain_decomposition(ps)
        assert d.num_chains == 1  # identical points are mutually comparable

    def test_chains_are_ascending(self, tiny_2d):
        d = matching_chain_decomposition(tiny_2d)
        assert is_valid_chain_decomposition(tiny_2d, d)


class TestPatienceDecomposition:
    def test_rejects_high_dimension(self):
        ps = PointSet([(0.0, 0.0, 0.0)], [0])
        with pytest.raises(ValueError):
            patience_chain_decomposition(ps)

    def test_1d_single_chain_sorted(self):
        ps = PointSet([(3.0,), (1.0,), (2.0,)], [0] * 3)
        d = patience_chain_decomposition(ps)
        assert d.num_chains == 1
        assert [ps.coords[i, 0] for i in d.chains[0]] == [1.0, 2.0, 3.0]

    def test_matches_matching_on_small_grids(self):
        for seed in range(25):
            ps = _random_points(seed, n=30, dim=2, grid=5)
            a = patience_chain_decomposition(ps)
            b = matching_chain_decomposition(ps)
            assert is_valid_chain_decomposition(ps, a)
            assert a.num_chains == b.num_chains

    def test_width_controlled_exact(self):
        ps = width_controlled(500, 7, noise=0.1, rng=0)
        d = patience_chain_decomposition(ps)
        assert d.num_chains == 7
        assert is_valid_chain_decomposition(ps, d)


class TestAutoDispatch:
    def test_auto_uses_patience_for_2d(self):
        ps = _random_points(0, 20, 2)
        assert minimum_chain_decomposition(ps).method == "patience"

    def test_auto_uses_matching_for_3d(self):
        ps = _random_points(0, 20, 3)
        assert minimum_chain_decomposition(ps).method == "matching"

    def test_explicit_method(self):
        ps = _random_points(0, 20, 2)
        assert minimum_chain_decomposition(ps, method="matching").method == "matching"

    def test_unknown_method(self):
        ps = _random_points(0, 5, 2)
        with pytest.raises(ValueError):
            minimum_chain_decomposition(ps, method="bogus")


class TestGreedyDecomposition:
    def test_valid_but_possibly_larger(self):
        for seed in range(10):
            ps = _random_points(seed, 40, 3)
            greedy = greedy_chain_decomposition(ps)
            exact = matching_chain_decomposition(ps)
            assert is_valid_chain_decomposition(ps, greedy)
            assert greedy.num_chains >= exact.num_chains

    def test_1d_single_chain(self):
        ps = PointSet([(float(i),) for i in range(20)], [0] * 20)
        assert greedy_chain_decomposition(ps).num_chains == 1


class TestChainDecompositionObject:
    def test_chain_of(self, tiny_2d):
        d = matching_chain_decomposition(tiny_2d)
        owner = d.chain_of()
        assert len(owner) == 4
        assert (owner >= 0).all()

    def test_sizes_sorted_descending(self):
        d = ChainDecomposition([[0], [1, 2, 3], [4, 5]], 6, "manual")
        assert d.sizes() == [3, 2, 1]

    def test_validation_catches_missing_point(self, tiny_2d):
        d = ChainDecomposition([[0, 3]], 4, "manual")
        assert not is_valid_chain_decomposition(tiny_2d, d)

    def test_validation_catches_duplicates(self, tiny_2d):
        d = ChainDecomposition([[0, 3], [3, 1, 2]], 4, "manual")
        assert not is_valid_chain_decomposition(tiny_2d, d)

    def test_validation_catches_bad_order(self, tiny_2d):
        # (2,2) listed before (0,0): descending, not a valid chain order.
        d = ChainDecomposition([[3, 0], [1], [2]], 4, "manual")
        assert not is_valid_chain_decomposition(tiny_2d, d)

    def test_validation_catches_incomparable_pair(self, tiny_2d):
        # (1,1) and (2,0) are incomparable.
        d = ChainDecomposition([[1, 2], [0], [3]], 4, "manual")
        assert not is_valid_chain_decomposition(tiny_2d, d)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 14), st.integers(1, 3), st.integers(0, 10_000))
def test_decomposition_size_equals_brute_force_width(n, dim, seed):
    """Property (Dilworth/Lemma 6): #chains equals the maximum anti-chain."""
    ps = _random_points(seed, n, dim, grid=4)
    d = minimum_chain_decomposition(ps)
    assert is_valid_chain_decomposition(ps, d)
    assert d.num_chains == brute_force_width(ps)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 25), st.integers(0, 10_000))
def test_patience_equals_matching_on_random_2d(n, seed):
    """Property: both exact methods agree on the chain count."""
    ps = _random_points(seed, n, 2)
    assert (patience_chain_decomposition(ps).num_chains
            == matching_chain_decomposition(ps).num_chains)
