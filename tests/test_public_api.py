"""API hygiene: exports exist, are documented, and the README snippet runs."""

from __future__ import annotations

import re
from pathlib import Path


import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} in __all__ but not importable"

    def test_public_callables_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not getattr(obj, "__doc__", None):
                undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_version_matches_pyproject(self):
        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        match = re.search(r'^version = "([^"]+)"', pyproject.read_text(),
                          re.MULTILINE)
        assert match is not None
        assert repro.__version__ == match.group(1)

    def test_submodules_documented(self):
        import importlib

        modules = [
            "repro.core", "repro.poset", "repro.flow", "repro.stats",
            "repro.baselines", "repro.datasets", "repro.experiments",
            "repro.io", "repro.viz", "repro.cli", "repro.serialization",
            "repro.evaluation",
        ]
        for name in modules:
            module = importlib.import_module(name)
            assert module.__doc__, f"{name} lacks a module docstring"

    def test_subpackage_alls_resolve(self):
        import importlib

        for name in ("repro.core", "repro.poset", "repro.flow",
                     "repro.stats", "repro.baselines", "repro.datasets"):
            module = importlib.import_module(name)
            for symbol in getattr(module, "__all__", []):
                assert hasattr(module, symbol), f"{name}.{symbol} missing"


class TestReadmeSnippet:
    def test_quickstart_code_block_executes(self, capsys):
        """The README's quickstart must actually run (docs don't rot)."""
        readme = Path(__file__).resolve().parents[1] / "README.md"
        text = readme.read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        assert blocks, "README has no python code block"
        namespace: dict = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
        out = capsys.readouterr().out
        assert "k*" in out or "probes" in out

    def test_package_docstring_quickstart_executes(self):
        """The package docstring's example must run, too."""
        doc = repro.__doc__
        match = re.search(r"Quickstart::\n\n(.*?)(?:\n\S|\Z)", doc, re.DOTALL)
        assert match is not None
        code = "\n".join(line[4:] if line.startswith("    ") else line
                         for line in match.group(1).splitlines())
        exec(compile(code, "<package quickstart>", "exec"), {})
