"""Focused semantics of the *weighted* problem (Problem 2).

Invariance and sensitivity properties a correct weighted solver must
satisfy, beyond matching brute force on random instances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PointSet, solve_passive, solve_passive_1d
from repro.datasets.synthetic import planted_monotone


def _random_weighted(seed: int, n: int, dim: int = 2) -> PointSet:
    gen = np.random.default_rng(seed)
    return PointSet(
        gen.integers(0, 4, size=(n, dim)).astype(float),
        gen.integers(0, 2, size=n),
        gen.random(n) + 0.1,
    )


class TestWeightScaling:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 15), st.floats(0.5, 20.0), st.integers(0, 10_000))
    def test_scaling_all_weights_scales_the_optimum(self, n, factor, seed):
        ps = _random_weighted(seed, n)
        scaled = ps.replace(weights=ps.weights * factor)
        assert solve_passive(scaled).optimal_error == \
            pytest.approx(factor * solve_passive(ps).optimal_error)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 15), st.integers(0, 10_000))
    def test_unit_weights_match_counting(self, n, seed):
        gen = np.random.default_rng(seed)
        coords = gen.integers(0, 4, size=(n, 2)).astype(float)
        labels = gen.integers(0, 2, size=n)
        unweighted = PointSet(coords, labels)
        explicit = PointSet(coords, labels, np.ones(n))
        assert solve_passive(unweighted).optimal_error == \
            solve_passive(explicit).optimal_error


class TestWeightSensitivity:
    def test_heavy_point_pins_its_label(self):
        """A sufficiently heavy point is never flipped."""
        gen = np.random.default_rng(3)
        ps = planted_monotone(60, 2, noise=0.3, rng=3, weights="random")
        heavy = ps.weights.copy()
        index = int(gen.integers(0, 60))
        heavy[index] = ps.weights.sum() + 1.0
        pinned = ps.replace(weights=heavy)
        result = solve_passive(pinned)
        assert result.assignment[index] == pinned.labels[index]

    def test_duplicating_a_point_equals_doubling_its_weight(self):
        base = _random_weighted(5, 12)
        doubled = base.replace(weights=np.concatenate(
            ([2 * base.weights[0]], base.weights[1:])))
        duplicated = PointSet(
            np.vstack([base.coords, base.coords[0:1]]),
            np.concatenate([base.labels, base.labels[0:1]]),
            np.concatenate([base.weights, [base.weights[0]]]),
        )
        assert solve_passive(doubled).optimal_error == \
            pytest.approx(solve_passive(duplicated).optimal_error)

    def test_epsilon_weights_break_ties_toward_light_points(self):
        # Conflict pair: flipping the lighter one is optimal.
        ps = PointSet([(0.0, 0.0), (1.0, 1.0)], [1, 0], [1.0, 1.0 + 1e-6])
        result = solve_passive(ps)
        assert result.assignment[0] == 0  # lighter label-1 point flipped
        assert result.optimal_error == pytest.approx(1.0)


class TestWeightedVsUnweightedDivergence:
    def test_weights_can_change_the_argmin(self):
        """Beyond Figure 1: random instances where the classifiers differ."""
        found_divergence = False
        for seed in range(30):
            gen = np.random.default_rng(seed)
            n = 14
            coords = gen.integers(0, 3, size=(n, 2)).astype(float)
            labels = gen.integers(0, 2, size=n)
            unit = PointSet(coords, labels)
            skewed = PointSet(coords, labels, gen.random(n) * 10 + 0.01)
            a = solve_passive(unit)
            b = solve_passive(skewed)
            if (a.assignment != b.assignment).any():
                found_divergence = True
                break
        assert found_divergence

    def test_1d_weighted_agreement_between_solvers(self):
        for seed in range(10):
            gen = np.random.default_rng(seed + 100)
            n = 80
            ps = PointSet(gen.random((n, 1)), gen.integers(0, 2, size=n),
                          gen.exponential(2.0, size=n) + 0.01)
            assert solve_passive(ps).optimal_error == \
                pytest.approx(solve_passive_1d(ps).optimal_error)


class TestRealValuedWeights:
    def test_irrational_like_weights_exact(self):
        """Float weights flow through the min-cut without rounding."""
        ps = PointSet([(0.0,), (1.0,)], [1, 0],
                      [np.pi / 10, np.e / 10])
        result = solve_passive(ps)
        assert result.optimal_error == pytest.approx(min(np.pi, np.e) / 10)

    def test_tiny_weights_do_not_vanish(self):
        ps = PointSet([(0.0,), (1.0,)], [1, 0], [1e-9, 2e-9])
        assert solve_passive(ps).optimal_error == pytest.approx(1e-9)
