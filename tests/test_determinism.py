"""Reproducibility: same seed, same everything.

Experiments and debugging both depend on byte-identical reruns; these
tests pin that every randomized entry point is a pure function of its
seed.
"""

from __future__ import annotations

import pytest

from repro import LabelOracle, active_classify, active_classify_1d
from repro.baselines import a2_classify, tao2018_classify
from repro.datasets.entity_matching import generate_entity_matching
from repro.datasets.noise import NOISE_MODELS
from repro.datasets.synthetic import (
    correlated_monotone,
    planted_monotone,
    planted_threshold_1d,
    staircase,
    width_controlled,
)


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("factory", [
        lambda seed: planted_threshold_1d(200, noise=0.1, rng=seed),
        lambda seed: planted_monotone(200, 3, noise=0.1, rng=seed),
        lambda seed: width_controlled(200, 4, noise=0.1, rng=seed),
        lambda seed: staircase(200, 3, noise=0.1, rng=seed),
        lambda seed: correlated_monotone(200, 2, rng=seed),
        lambda seed: generate_entity_matching(200, rng=seed).points,
    ])
    def test_same_seed_same_data(self, factory):
        a, b = factory(42), factory(42)
        assert (a.coords == b.coords).all()
        assert (a.labels == b.labels).all()
        c = factory(43)
        assert not ((c.coords == a.coords).all() and (c.labels == a.labels).all())

    def test_noise_models_deterministic(self):
        clean = planted_monotone(150, 2, noise=0.0, rng=0)
        for name, transform in NOISE_MODELS.items():
            a = transform(clean, 0.1, rng=5)
            b = transform(clean, 0.1, rng=5)
            assert (a.labels == b.labels).all(), name


class TestAlgorithmDeterminism:
    def test_active_1d_identical_probe_sequence(self):
        points = planted_threshold_1d(5_000, noise=0.1, rng=1)
        logs = []
        for _ in range(2):
            oracle = LabelOracle(points)
            result = active_classify_1d(points.with_hidden_labels(), oracle,
                                        epsilon=0.5, rng=7)
            logs.append((oracle.log, result.classifier.tau,
                         result.probing_cost))
        assert logs[0] == logs[1]

    def test_active_multid_identical_outcome(self):
        points = width_controlled(3_000, 4, noise=0.1, rng=2)
        outcomes = []
        for _ in range(2):
            oracle = LabelOracle(points)
            result = active_classify(points.with_hidden_labels(), oracle,
                                     epsilon=0.5, rng=9)
            outcomes.append((
                result.probing_cost,
                tuple(sorted(result.sigma.weights.items())),
                tuple(result.classifier.classify_set(points).tolist()),
            ))
        assert outcomes[0] == outcomes[1]

    def test_baselines_deterministic(self):
        points = width_controlled(1_000, 3, noise=0.1, rng=3)
        for runner in (
            lambda o: tao2018_classify(points.with_hidden_labels(), o, rng=4),
            lambda o: a2_classify(points.with_hidden_labels(), o,
                                  epsilon=0.5, rng=4),
        ):
            results = []
            for _ in range(2):
                oracle = LabelOracle(points)
                result = runner(oracle)
                results.append((result.probing_cost,
                                tuple(result.classifier.classify_set(points)
                                      .tolist())))
            assert results[0] == results[1]

    def test_passive_is_deterministic_without_seed(self):
        """The exact solver has no randomness at all."""
        from repro import solve_passive

        points = planted_monotone(150, 2, noise=0.2, rng=5, weights="random")
        a = solve_passive(points)
        b = solve_passive(points)
        assert (a.assignment == b.assignment).all()
        assert a.optimal_error == b.optimal_error
