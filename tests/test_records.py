"""Tests for the record-linkage simulation (repro.datasets.records)."""

from __future__ import annotations

import pytest

from repro import solve_passive
from repro.datasets.records import (
    generate_record_linkage,
    normalized_levenshtein,
    numeric_proximity,
    token_jaccard,
    trigram_jaccard,
)


class TestSimilarityFunctions:
    def test_token_jaccard(self):
        assert token_jaccard("john smith", "john smith") == 1.0
        assert token_jaccard("john smith", "jane smith") == pytest.approx(1 / 3)
        assert token_jaccard("abc", "xyz") == 0.0
        assert token_jaccard("", "") == 1.0
        assert token_jaccard("a", "") == 0.0

    def test_trigram_jaccard_typo_tolerant(self):
        exact = trigram_jaccard("johnson", "johnson")
        typo = trigram_jaccard("johnson", "jhonson")
        different = trigram_jaccard("johnson", "martinez")
        assert exact == 1.0
        assert different < typo < exact
        assert typo > 0.3

    def test_normalized_levenshtein(self):
        assert normalized_levenshtein("kitten", "kitten") == 1.0
        # Classic distance 3 over max length 7.
        assert normalized_levenshtein("kitten", "sitting") == \
            pytest.approx(1 - 3 / 7)
        assert normalized_levenshtein("", "abc") == 0.0
        assert normalized_levenshtein("abc", "") == 0.0

    def test_levenshtein_symmetry(self):
        pairs = [("smith", "smyth"), ("12345", "12354"), ("a", "ab")]
        for a, b in pairs:
            assert normalized_levenshtein(a, b) == \
                pytest.approx(normalized_levenshtein(b, a))

    def test_numeric_proximity(self):
        assert numeric_proximity(1980, 1980, 10) == 1.0
        assert numeric_proximity(1980, 1985, 10) == 0.5
        assert numeric_proximity(1980, 2000, 10) == 0.0
        with pytest.raises(ValueError):
            numeric_proximity(1, 2, 0)

    def test_all_similarities_in_unit_interval(self, rng):
        strings = ["john smith", "jon smith", "mary jones", "", "x"]
        for a in strings:
            for b in strings:
                for fn in (token_jaccard, trigram_jaccard,
                           normalized_levenshtein):
                    assert 0.0 <= fn(a, b) <= 1.0


class TestWorkloadGeneration:
    @pytest.fixture(scope="class")
    def workload(self):
        return generate_record_linkage(n_entities=300, nonmatch_ratio=3.0,
                                       severity=0.5, rng=0)

    def test_shapes_and_counts(self, workload):
        assert workload.n == 300 * 4  # matches + 3x non-matches
        assert workload.points.dim == 4
        assert int((workload.points.labels == 1).sum()) == 300
        assert len(workload.pair_records) == workload.n

    def test_scores_in_unit_interval(self, workload):
        assert (workload.points.coords >= 0).all()
        assert (workload.points.coords <= 1).all()

    def test_matches_score_higher(self, workload):
        points = workload.points
        match_mean = points.coords[points.labels == 1].mean()
        nonmatch_mean = points.coords[points.labels == 0].mean()
        assert match_mean > nonmatch_mean + 0.25

    def test_pairs_align_with_labels(self, workload):
        for i in range(0, workload.n, 97):
            a, b = workload.pair_records[i]
            expected = 1 if a.entity_id == b.entity_id else 0
            assert int(workload.points.labels[i]) == expected

    def test_noise_makes_kstar_positive_but_small(self, workload):
        optimum = solve_passive(workload.points).optimal_error
        # Typos create genuine score-label conflicts...
        assert optimum > 0
        # ...but far fewer than a constant classifier's error.
        assert optimum < 0.2 * workload.n

    def test_monotone_classifier_is_accurate(self, workload):
        from repro.evaluation import holdout_evaluation

        report = holdout_evaluation(workload.points, rng=1)
        assert report.test_metrics["f1"] > 0.8

    def test_deterministic(self):
        a = generate_record_linkage(50, rng=7)
        b = generate_record_linkage(50, rng=7)
        assert (a.points.coords == b.points.coords).all()
        assert (a.points.labels == b.points.labels).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_record_linkage(0)
        with pytest.raises(ValueError):
            generate_record_linkage(10, nonmatch_ratio=-1)
        with pytest.raises(ValueError):
            generate_record_linkage(10, severity=2.0)

    def test_namesakes_create_the_conflicts(self):
        """Hard negatives (namesakes) are what drives k* above zero.

        Individual seeds are noisy (a namesake only conflicts when its
        quantized scores dominate some true match's), so aggregate over
        several seeds.
        """
        def total_kstar(fraction: float) -> float:
            return sum(
                solve_passive(generate_record_linkage(
                    400, namesake_fraction=fraction, severity=0.5,
                    rng=seed).points).optimal_error
                for seed in range(3)
            )

        assert total_kstar(0.4) > 2 * total_kstar(0.0)

    def test_namesake_validation(self):
        with pytest.raises(ValueError):
            generate_record_linkage(10, namesake_fraction=1.5)
