"""Tests for the experiment report generator (repro.experiments.report)."""

from __future__ import annotations

import pytest

from repro.experiments.report import check_rows, generate_report, main


class TestCheckRows:
    def test_healthy_rows(self):
        rows = [{"match": True, "n": 3}, {"agree": True}]
        assert check_rows(rows) == []

    def test_boolean_failure_detected(self):
        rows = [{"match": True}, {"match": False}]
        failures = check_rows(rows)
        assert len(failures) == 1
        assert "row 1" in failures[0]

    def test_mismatch_string_detected(self):
        rows = [{"optimality_check": "ok"}, {"optimality_check": "MISMATCH"}]
        assert len(check_rows(rows)) == 1

    def test_na_strings_pass(self):
        assert check_rows([{"optimality_check": "n/a"}]) == []

    def test_non_check_columns_ignored(self):
        assert check_rows([{"enabled": False, "value": 0}]) == []


class TestGenerateReport:
    def test_contains_sections_and_tables(self):
        report = generate_report(["figure1"])
        assert "# Experiment report" in report
        assert "Figure 1 worked example" in report
        assert "ALL PASS" in report
        assert "```" in report

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            generate_report(["bogus"])


class TestMain:
    def test_writes_file_and_exits_zero(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        code = main([str(output), "figure1", "lowerbound"])
        assert code == 0
        text = output.read_text()
        assert "Figure 1" in text and "lower-bound" in text
        assert "FAILURES SUMMARY" not in text
