"""Tests for the baseline algorithms (repro.baselines)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConstantClassifier,
    LabelOracle,
    PointSet,
    error_count,
    solve_passive,
    solve_passive_1d,
    weighted_error,
)
from repro.baselines import (
    a2_classify,
    isotonic_fit,
    isotonic_threshold_classifier,
    majority_classifier,
    pava,
    probe_all_classify,
    random_threshold_classifier,
    tao2018_classify,
)
from repro.datasets.synthetic import planted_threshold_1d, width_controlled


class TestProbeAll:
    def test_probes_everything_and_is_optimal(self, tiny_2d):
        oracle = LabelOracle(tiny_2d)
        result = probe_all_classify(tiny_2d.with_hidden_labels(), oracle)
        assert result.probing_cost == tiny_2d.n
        assert error_count(tiny_2d, result.classifier) == 1
        assert result.optimal_error == 1.0

    def test_matches_passive_solver(self, rng):
        from repro.datasets.synthetic import planted_monotone

        ps = planted_monotone(200, 2, noise=0.15, rng=3)
        oracle = LabelOracle(ps)
        result = probe_all_classify(ps.with_hidden_labels(), oracle)
        assert result.optimal_error == \
            pytest.approx(solve_passive(ps).optimal_error)


class TestTao2018:
    def test_clean_chains_found_exactly(self):
        """With zero noise the binary search finds the exact boundary."""
        ps = width_controlled(1_000, 4, noise=0.0, rng=0)
        oracle = LabelOracle(ps)
        result = tao2018_classify(ps.with_hidden_labels(), oracle, rng=1)
        assert error_count(ps, result.classifier) == 0
        # O(log) probes per chain.
        assert result.probing_cost < 4 * 14

    def test_probing_is_logarithmic(self):
        ps = width_controlled(32_000, 4, noise=0.05, rng=1)
        oracle = LabelOracle(ps)
        result = tao2018_classify(ps.with_hidden_labels(), oracle, rng=2)
        assert result.probing_cost < 4 * 20 * 3  # w * log(n/w) * small const

    def test_repeats_increase_cost(self):
        ps = width_controlled(4_000, 4, noise=0.1, rng=2)
        costs = {}
        for repeats in (1, 5):
            oracle = LabelOracle(ps)
            result = tao2018_classify(ps.with_hidden_labels(), oracle,
                                      repeats=repeats, rng=3)
            costs[repeats] = oracle.total_requests
        assert costs[5] > costs[1]

    def test_rejects_bad_repeats(self, tiny_2d):
        oracle = LabelOracle(tiny_2d)
        with pytest.raises(ValueError):
            tao2018_classify(tiny_2d.with_hidden_labels(), oracle, repeats=0)

    def test_boundaries_recorded_per_chain(self):
        ps = width_controlled(100, 5, noise=0.0, rng=4)
        oracle = LabelOracle(ps)
        result = tao2018_classify(ps.with_hidden_labels(), oracle, rng=5)
        assert len(result.boundaries) == result.num_chains == 5


class TestA2:
    def test_runs_and_returns_reasonable_classifier(self):
        ps = width_controlled(2_000, 4, noise=0.05, rng=5)
        oracle = LabelOracle(ps)
        result = a2_classify(ps.with_hidden_labels(), oracle, epsilon=0.5, rng=6)
        assert result.probing_cost == oracle.cost
        assert result.rounds >= 1
        optimum = solve_passive(ps).optimal_error
        err = error_count(ps, result.classifier)
        assert err <= max(2.5 * optimum, optimum + 40)

    def test_clean_input_converges(self):
        ps = width_controlled(1_000, 2, noise=0.0, rng=7)
        oracle = LabelOracle(ps)
        result = a2_classify(ps.with_hidden_labels(), oracle, epsilon=0.5,
                             max_rounds=200, rng=8)
        assert error_count(ps, result.classifier) <= 2

    def test_epsilon_validation(self, tiny_2d):
        oracle = LabelOracle(tiny_2d)
        with pytest.raises(ValueError):
            a2_classify(tiny_2d.with_hidden_labels(), oracle, epsilon=0.0)

    def test_budget_bounded_by_rounds(self):
        ps = width_controlled(3_000, 4, noise=0.1, rng=9)
        oracle = LabelOracle(ps)
        result = a2_classify(ps.with_hidden_labels(), oracle, epsilon=0.5,
                             samples_per_round=16, max_rounds=10, rng=10)
        assert result.probing_cost <= 16 * 10


class TestPAVA:
    def test_already_monotone_unchanged(self):
        values = np.array([1.0, 2.0, 3.0])
        fit = pava(values, np.ones(3))
        assert np.allclose(fit, values)

    def test_decreasing_pools_to_mean(self):
        fit = pava(np.array([3.0, 1.0]), np.ones(2))
        assert np.allclose(fit, [2.0, 2.0])

    def test_weighted_pooling(self):
        fit = pava(np.array([3.0, 0.0]), np.array([3.0, 1.0]))
        assert np.allclose(fit, [2.25, 2.25])

    def test_output_is_monotone(self, rng):
        values = rng.random(100)
        weights = rng.random(100) + 0.1
        fit = pava(values, weights)
        assert (np.diff(fit) >= -1e-12).all()

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            pava(np.array([1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            pava(np.array([1.0]), np.array([1.0, 2.0]))

    def test_empty(self):
        assert pava(np.array([]), np.array([])).size == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=30))
    def test_pava_is_l2_projection(self, values):
        """Property: no single-block perturbation improves the L2 fit."""
        arr = np.asarray(values)
        fit = pava(arr, np.ones(len(arr)))
        assert (np.diff(fit) >= -1e-9).all()
        base = float(((fit - arr) ** 2).sum())
        # Block means property: the fit of each constant block equals the
        # mean of its values (first-order optimality).
        start = 0
        for end in range(1, len(fit) + 1):
            if end == len(fit) or fit[end] != fit[start]:
                block_mean = arr[start:end].mean()
                assert fit[start] == pytest.approx(block_mean)
                start = end
        assert base >= 0


class TestIsotonicClassifier:
    def test_matches_exact_1d_solver(self, rng):
        ps = planted_threshold_1d(400, noise=0.2, rng=11, weights="random")
        iso = isotonic_threshold_classifier(ps)
        exact = solve_passive_1d(ps).optimal_error
        assert weighted_error(ps, iso) == pytest.approx(exact)

    def test_requires_1d(self, tiny_2d):
        with pytest.raises(ValueError):
            isotonic_threshold_classifier(tiny_2d)

    def test_all_ones(self):
        ps = PointSet([(1.0,), (2.0,)], [1, 1])
        iso = isotonic_threshold_classifier(ps)
        assert weighted_error(ps, iso) == 0.0

    def test_isotonic_fit_pools_ties(self):
        xs, fit = isotonic_fit([1.0, 1.0, 2.0], [0, 1, 1])
        assert list(xs) == [1.0, 2.0]
        assert fit[0] == pytest.approx(0.5)

    def test_empty_pointset(self):
        ps = PointSet(np.empty((0, 1)), [], [])
        classifier = isotonic_threshold_classifier(ps)
        assert classifier.tau == float("inf")


class TestTrivialBaselines:
    def test_majority_picks_the_majority(self):
        ps = PointSet([(float(i),) for i in range(100)], [1] * 90 + [0] * 10)
        oracle = LabelOracle(ps)
        assert majority_classifier(ps.with_hidden_labels(), oracle,
                                   rng=0) == ConstantClassifier(1)

    def test_majority_cost_bounded(self):
        ps = planted_threshold_1d(1_000, rng=12)
        oracle = LabelOracle(ps)
        majority_classifier(ps.with_hidden_labels(), oracle, sample_size=32, rng=1)
        assert oracle.cost <= 32

    def test_random_threshold_zero_probes(self):
        ps = planted_threshold_1d(100, rng=13)
        h = random_threshold_classifier(ps, rng=2)
        assert h.tau in set(ps.coords[:, 0].tolist())

    def test_random_threshold_empty(self):
        ps = PointSet(np.empty((0, 1)), [], [])
        assert random_threshold_classifier(ps, rng=3).tau == float("inf")
