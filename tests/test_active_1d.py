"""Tests for the 1-D active framework (repro.core.active_1d, Section 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LabelOracle, PointSet, error_count, solve_passive_1d
from repro.core.active_1d import (
    BASE_CASE_SIZE,
    LevelTrace,
    WeightedSample,
    _empirical_threshold_errors,
    active_classify_1d,
    build_weighted_sample_1d,
)
from repro.datasets.synthetic import planted_threshold_1d
from repro.stats.estimation import SamplingPlan


class TestWeightedSample:
    def test_accumulates_weight(self):
        sigma = WeightedSample()
        sigma.add(3, 1.5, 1)
        sigma.add(3, 2.5, 1)
        assert sigma.weights[3] == 4.0
        assert sigma.size == 1
        assert sigma.total_weight == 4.0

    def test_merge(self):
        a, b = WeightedSample(), WeightedSample()
        a.add(0, 1.0, 0)
        b.add(0, 2.0, 0)
        b.add(1, 3.0, 1)
        a.merge(b)
        assert a.weights == {0: 3.0, 1: 3.0}

    def test_arrays_sorted_by_index(self):
        sigma = WeightedSample()
        sigma.add(5, 1.0, 1)
        sigma.add(2, 2.0, 0)
        indices, weights, labels = sigma.arrays()
        assert list(indices) == [2, 5]
        assert list(weights) == [2.0, 1.0]
        assert list(labels) == [0, 1]


class TestEmpiricalThresholdErrors:
    def test_counts(self):
        values = np.array([1.0, 2.0, 3.0])
        labels = np.array([0, 1, 1], dtype=np.int8)
        taus, errors = _empirical_threshold_errors(values, labels)
        assert list(taus) == [float("-inf"), 1.0, 2.0, 3.0]
        assert list(errors) == [1.0, 0.0, 1.0, 2.0]

    def test_multiset_duplicates(self):
        values = np.array([1.0, 1.0, 2.0])
        labels = np.array([1, 0, 1], dtype=np.int8)
        taus, errors = _empirical_threshold_errors(values, labels)
        assert list(taus) == [float("-inf"), 1.0, 2.0]
        # tau=-inf: errs on the 0; tau=1: errs on the two... one 1 at value 1.
        assert list(errors) == [1.0, 1.0, 2.0]


class TestBaseCases:
    def test_tiny_input_probes_everything(self):
        n = BASE_CASE_SIZE
        ps = planted_threshold_1d(n, rng=0)
        oracle = LabelOracle(ps)
        result = active_classify_1d(ps.with_hidden_labels(), oracle, epsilon=0.5, rng=0)
        assert result.probing_cost == n
        # Sigma is exactly the full population with unit weights.
        assert result.sigma.size == n
        assert all(w == 1.0 for w in result.sigma.weights.values())
        # And the answer is therefore exactly optimal.
        assert error_count(ps, result.classifier) == \
            solve_passive_1d(ps).optimal_error

    def test_empty_input(self):
        ps = PointSet(np.empty((0, 1)), [], [])
        oracle = LabelOracle(PointSet([(0.0,)], [0]))
        result = active_classify_1d(ps, oracle, epsilon=0.5)
        assert result.probing_cost == 0

    def test_requires_1d(self, tiny_2d):
        oracle = LabelOracle(tiny_2d)
        with pytest.raises(ValueError):
            active_classify_1d(tiny_2d.with_hidden_labels(), oracle, epsilon=0.5)

    def test_epsilon_validation(self):
        ps = planted_threshold_1d(10, rng=0)
        oracle = LabelOracle(ps)
        for eps in (0.0, -1.0, 1.5):
            with pytest.raises(ValueError):
                active_classify_1d(ps.with_hidden_labels(), oracle, epsilon=eps)

    def test_delta_validation(self):
        ps = planted_threshold_1d(10, rng=0)
        oracle = LabelOracle(ps)
        with pytest.raises(ValueError):
            active_classify_1d(ps.with_hidden_labels(), oracle, epsilon=0.5, delta=2.0)


class TestGuarantees:
    def test_sublinear_probing_on_large_input(self):
        n = 60_000
        ps = planted_threshold_1d(n, noise=0.05, rng=1)
        oracle = LabelOracle(ps)
        result = active_classify_1d(ps.with_hidden_labels(), oracle,
                                    epsilon=1.0, rng=2)
        assert result.probing_cost < n // 4
        assert result.probing_cost == oracle.cost

    def test_error_guarantee_across_seeds(self):
        """err <= (1 + eps) k* should hold for (nearly) every seed."""
        n, eps = 20_000, 0.5
        ps = planted_threshold_1d(n, noise=0.1, rng=3)
        optimum = solve_passive_1d(ps).optimal_error
        failures = 0
        for seed in range(10):
            oracle = LabelOracle(ps)
            result = active_classify_1d(ps.with_hidden_labels(), oracle,
                                        epsilon=eps, rng=seed)
            err = error_count(ps, result.classifier)
            if err > (1 + eps) * optimum:
                failures += 1
        assert failures == 0

    def test_zero_noise_finds_optimal(self):
        ps = planted_threshold_1d(20_000, noise=0.0, rng=4)
        oracle = LabelOracle(ps)
        result = active_classify_1d(ps.with_hidden_labels(), oracle,
                                    epsilon=0.5, rng=5)
        assert error_count(ps, result.classifier) == 0

    def test_probing_grows_with_inverse_epsilon(self):
        ps = planted_threshold_1d(100_000, noise=0.05, rng=6)
        costs = {}
        for eps in (1.0, 0.25):
            oracle = LabelOracle(ps)
            result = active_classify_1d(ps.with_hidden_labels(), oracle,
                                        epsilon=eps, rng=7)
            costs[eps] = result.probing_cost
        assert costs[0.25] > 3 * costs[1.0]

    def test_sigma_error_is_certificate(self):
        """The returned classifier minimizes w-err over Sigma (Lemma 13)."""
        ps = planted_threshold_1d(5_000, noise=0.1, rng=8)
        oracle = LabelOracle(ps)
        result = active_classify_1d(ps.with_hidden_labels(), oracle,
                                    epsilon=0.5, rng=9)
        indices, weights, labels = result.sigma.arrays()
        sigma_ps = PointSet(ps.coords[indices], labels, weights)
        exact = solve_passive_1d(sigma_ps).optimal_error
        assert result.sigma_error == pytest.approx(exact)

    def test_all_labels_constant(self):
        """Degenerate inputs (all 0 / all 1) are handled and solved exactly."""
        for label in (0, 1):
            ps = PointSet(np.linspace(0, 1, 2_000).reshape(-1, 1),
                          [label] * 2_000)
            oracle = LabelOracle(ps)
            result = active_classify_1d(ps.with_hidden_labels(), oracle,
                                        epsilon=0.5, rng=10)
            assert error_count(ps, result.classifier) == 0

    def test_probes_only_what_oracle_charges(self):
        ps = planted_threshold_1d(10_000, noise=0.05, rng=11)
        oracle = LabelOracle(ps)
        result = active_classify_1d(ps.with_hidden_labels(), oracle,
                                    epsilon=0.8, rng=12)
        assert result.probing_cost == oracle.cost
        # Every point in Sigma must actually have been probed.
        for idx, label in result.sigma.labels.items():
            assert oracle.peek(idx) == label


class TestLevelTrace:
    def test_trace_records_every_level(self):
        ps = planted_threshold_1d(30_000, noise=0.1, rng=17)
        oracle = LabelOracle(ps)
        result = active_classify_1d(ps.with_hidden_labels(), oracle,
                                    epsilon=0.5, rng=18)
        assert len(result.trace) == result.levels
        assert result.trace[0].population == 30_000
        assert result.trace[-1].kind in ("base", "no-window", "degenerate")

    def test_shrink_levels_obey_lemma10(self):
        """Lemma 10: |P'| <= (5/8)|P| at every shrink level (whp)."""
        failures = 0
        total = 0
        for seed in range(10):
            ps = planted_threshold_1d(40_000, noise=0.08, rng=seed)
            oracle = LabelOracle(ps)
            result = active_classify_1d(ps.with_hidden_labels(), oracle,
                                        epsilon=0.5, rng=seed + 100)
            for level in result.trace:
                if level.kind == "shrink":
                    total += 1
                    if level.shrink_factor > 5 / 8:
                        failures += 1
        assert total > 10  # the sweep actually exercised shrink levels
        assert failures <= max(1, total // 20)  # whp, allow rare excursions

    def test_populations_decrease_along_trace(self):
        ps = planted_threshold_1d(20_000, noise=0.1, rng=19)
        oracle = LabelOracle(ps)
        result = active_classify_1d(ps.with_hidden_labels(), oracle,
                                    epsilon=1.0, rng=20)
        populations = [level.population for level in result.trace]
        assert populations == sorted(populations, reverse=True)

    def test_shrink_factor_none_for_base(self):
        trace = LevelTrace(depth=0, population=10, sample_size=10, kind="base")
        assert trace.shrink_factor is None


class TestBuildWeightedSample:
    def test_respects_global_indices(self):
        ps = planted_threshold_1d(200, noise=0.1, rng=13)
        oracle = LabelOracle(ps)
        # Feed only the even-indexed points as the subproblem.
        subset = np.arange(0, 200, 2)
        sigma, _levels, _trace = build_weighted_sample_1d(
            ps.coords[subset, 0], subset, oracle, epsilon=0.5, delta=0.01, rng=14)
        assert set(sigma.weights) <= set(subset.tolist())

    def test_length_mismatch_rejected(self):
        ps = planted_threshold_1d(10, rng=0)
        oracle = LabelOracle(ps)
        with pytest.raises(ValueError):
            build_weighted_sample_1d([0.0, 1.0], [0], oracle, 0.5, 0.1)

    def test_theory_profile_runs(self):
        """The proof-constant profile is usable (it just probes everything)."""
        ps = planted_threshold_1d(500, noise=0.1, rng=15)
        oracle = LabelOracle(ps)
        result = active_classify_1d(ps.with_hidden_labels(), oracle, epsilon=0.5,
                                    plan=SamplingPlan(profile="theory"), rng=16)
        assert error_count(ps, result.classifier) == \
            solve_passive_1d(ps).optimal_error
