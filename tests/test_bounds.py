"""Tests for the closed-form bound calculators (repro.core.bounds)."""

from __future__ import annotations

import pytest

from repro.core.bounds import (
    a2_probing_shape,
    lemma9_probing_shape,
    paper_log2,
    tao2018_lower_bound_shape,
    tao2018_probing_shape,
    theorem2_probing_shape,
)


class TestPaperLog:
    def test_convention(self):
        # The paper defines log x = 1 + log2 x.
        assert paper_log2(1.0) == 1.0
        assert paper_log2(2.0) == 2.0
        assert paper_log2(8.0) == 4.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            paper_log2(0.0)


class TestTheorem2Shape:
    def test_linear_in_w_at_fixed_log_terms(self):
        # Doubling w doubles the w factor but shrinks log(n/w) slightly.
        small = theorem2_probing_shape(10_000, 2, 1.0)
        large = theorem2_probing_shape(10_000, 4, 1.0)
        assert 1.5 < large / small < 2.0

    def test_inverse_quadratic_in_eps(self):
        base = theorem2_probing_shape(10_000, 8, 1.0)
        tight = theorem2_probing_shape(10_000, 8, 0.5)
        assert tight == pytest.approx(4 * base)

    def test_polylog_in_n(self):
        # Multiplying n by 16 should grow the bound by far less than 16x.
        small = theorem2_probing_shape(2_000, 8, 1.0)
        large = theorem2_probing_shape(32_000, 8, 1.0)
        assert large / small < 2.5

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem2_probing_shape(10, 20, 0.5)
        with pytest.raises(ValueError):
            theorem2_probing_shape(10, 2, 0.0)
        with pytest.raises(ValueError):
            theorem2_probing_shape(0, 1, 0.5)


class TestOtherShapes:
    def test_lemma9(self):
        assert lemma9_probing_shape(1_000, 0.5, 0.01) > \
            lemma9_probing_shape(1_000, 1.0, 0.01)
        with pytest.raises(ValueError):
            lemma9_probing_shape(1_000, 0.5, 1.5)

    def test_tao2018_upper_vs_lower(self):
        """The [25] upper bound dominates its own lower bound."""
        for k_star in (0, 5, 50):
            upper = tao2018_probing_shape(10_000, 8)
            lower = tao2018_lower_bound_shape(10_000, 8, k_star)
            assert lower <= upper

    def test_tao2018_lower_bound_vacuous_for_huge_kstar(self):
        assert tao2018_lower_bound_shape(100, 10, 1_000) == 0.0

    def test_a2_quadratic_in_w(self):
        assert a2_probing_shape(8, 0.5) == pytest.approx(4 * a2_probing_shape(4, 0.5))
        with pytest.raises(ValueError):
            a2_probing_shape(0, 0.5)

    def test_theorem2_improves_on_a2_for_large_w(self):
        """Section 1.2: the new bound beats A^2 by ~a factor of w.

        The crossover sits where w exceeds the polylog factor (~log^2 n),
        so compare beyond it and check the advantage keeps growing.
        """
        n, eps = 100_000, 0.5
        ratios = []
        for w in (256, 1_024, 4_096):
            ours = theorem2_probing_shape(n, w, eps)
            theirs = a2_probing_shape(w, eps)
            assert theirs > ours
            ratios.append(theirs / ours)
        assert ratios == sorted(ratios)  # advantage grows with w
