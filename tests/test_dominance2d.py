"""Tests for the low-dimensional sweepline fast paths (repro.poset.dominance2d)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PointSet, solve_passive
from repro.core.passive import contending_mask
from repro.poset.dominance2d import (
    contending_mask_low_dim,
    count_violations_low_dim,
    is_monotone_labeling_low_dim,
)
from repro.poset.fenwick import FenwickTree


class TestFenwickTree:
    def test_prefix_sums(self):
        tree = FenwickTree(8)
        tree.add(0)
        tree.add(3, 2)
        tree.add(7)
        assert tree.prefix_sum(0) == 1
        assert tree.prefix_sum(2) == 1
        assert tree.prefix_sum(3) == 3
        assert tree.prefix_sum(7) == 4
        assert tree.total() == 4

    def test_range_sum(self):
        tree = FenwickTree(5)
        for i in range(5):
            tree.add(i, i)
        assert tree.range_sum(1, 3) == 6
        assert tree.range_sum(3, 1) == 0
        assert tree.range_sum(0, 4) == 10

    def test_bounds(self):
        tree = FenwickTree(3)
        with pytest.raises(IndexError):
            tree.add(3)
        assert tree.prefix_sum(10) == 0  # clamped
        assert FenwickTree(0).total() == 0

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_against_numpy_cumsum(self, rng):
        size = 64
        tree = FenwickTree(size)
        reference = np.zeros(size, dtype=int)
        for _ in range(200):
            idx = int(rng.integers(0, size))
            amount = int(rng.integers(1, 5))
            tree.add(idx, amount)
            reference[idx] += amount
            probe = int(rng.integers(0, size))
            assert tree.prefix_sum(probe) == reference[: probe + 1].sum()


def _random_labeled(seed: int, n: int, dim: int, grid: int = 6) -> PointSet:
    gen = np.random.default_rng(seed)
    coords = gen.integers(0, grid, size=(n, dim)).astype(float)
    labels = gen.integers(0, 2, size=n)
    return PointSet(coords, labels)


class TestContendingMaskLowDim:
    @pytest.mark.parametrize("dim", [1, 2])
    def test_matches_matrix_version(self, dim):
        for seed in range(20):
            ps = _random_labeled(seed, 50, dim)
            assert (contending_mask_low_dim(ps) == contending_mask(ps)).all()

    def test_figure1_contending_sets(self):
        from repro.datasets.figures import figure1_point_set

        ps = figure1_point_set()
        assert (contending_mask_low_dim(ps) == contending_mask(ps)).all()

    def test_duplicates_with_opposite_labels(self):
        ps = PointSet([(1.0, 1.0), (1.0, 1.0)], [0, 1])
        assert contending_mask_low_dim(ps).all()

    def test_rejects_high_dim(self):
        ps = _random_labeled(0, 5, 3)
        with pytest.raises(ValueError):
            contending_mask_low_dim(ps)

    def test_empty(self):
        assert contending_mask_low_dim(PointSet.from_points([])).shape == (0,)

    def test_requires_labels(self, tiny_2d):
        with pytest.raises(ValueError):
            contending_mask_low_dim(tiny_2d.with_hidden_labels())


class TestViolationCounting:
    def test_zero_on_monotone(self, monotone_2d):
        assert count_violations_low_dim(monotone_2d) == 0
        assert is_monotone_labeling_low_dim(monotone_2d)

    def test_counts_pairs(self):
        # label-0 at (2,2) dominates label-1 at (0,0) and (1,1): 2 pairs.
        ps = PointSet([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)], [1, 1, 0])
        assert count_violations_low_dim(ps) == 2

    @pytest.mark.parametrize("dim", [1, 2])
    def test_matches_matrix_count(self, dim):
        for seed in range(20):
            ps = _random_labeled(seed + 50, 40, dim)
            weak = ps.weak_dominance_matrix()
            zeros = ps.labels == 0
            ones = ps.labels == 1
            expected = int(weak[np.ix_(zeros, ones)].sum())
            assert count_violations_low_dim(ps) == expected

    def test_agrees_with_is_monotone_labeling(self):
        for seed in range(20):
            ps = _random_labeled(seed + 100, 30, 2)
            assert is_monotone_labeling_low_dim(ps) == ps.is_monotone_labeling()


class TestPassiveIntegration:
    def test_solve_passive_uses_fast_path_correctly(self):
        """2-D solve (fast mask) equals 3-D-padded solve (matrix mask)."""
        for seed in range(8):
            ps = _random_labeled(seed + 200, 60, 2)
            fast = solve_passive(ps)
            padded = PointSet(
                np.hstack([ps.coords, np.zeros((ps.n, 1))]), ps.labels)
            slow = solve_passive(padded)
            assert fast.optimal_error == pytest.approx(slow.optimal_error)
            assert fast.num_contending == slow.num_contending


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 30), st.integers(1, 2), st.integers(0, 10_000))
def test_lowdim_mask_always_matches_matrix(n, dim, seed):
    """Property: sweepline mask == matrix mask on tie-heavy random inputs."""
    ps = _random_labeled(seed, n, dim, grid=4)
    assert (contending_mask_low_dim(ps) == contending_mask(ps)).all()
