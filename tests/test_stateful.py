"""Stateful property-based tests (hypothesis RuleBasedStateMachine).

These machines drive long random interaction sequences against the
incremental structures, checking after every step that they agree with a
trivially-correct reference model.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro import LabelOracle, PointSet
from repro.core.errindex import ThresholdErrorIndex
from repro.core.passive_1d import best_threshold
from repro.poset.fenwick import FenwickTree

CANDIDATES = [float(v) for v in range(8)]


class ThresholdIndexMachine(RuleBasedStateMachine):
    """The segment-tree index must always match a brute-force re-solve."""

    def __init__(self):
        super().__init__()
        self.index = ThresholdErrorIndex(CANDIDATES)
        self.values: list = []
        self.labels: list = []
        self.weights: list = []

    @rule(value=st.sampled_from(CANDIDATES), label=st.integers(0, 1),
          weight=st.floats(0.1, 4.0))
    def insert(self, value, label, weight):
        self.index.insert(value, label, weight)
        self.values.append(value)
        self.labels.append(label)
        self.weights.append(weight)

    @invariant()
    def minimum_matches_batch_solver(self):
        if not self.values:
            return
        _tau, err = self.index.best()
        _tau2, expected = best_threshold(self.values, self.labels, self.weights)
        assert abs(err - expected) < 1e-9 * max(1.0, expected)

    @invariant()
    def accounting_consistent(self):
        assert self.index.num_inserted == len(self.values)
        assert abs(self.index.total_weight - sum(self.weights)) < 1e-9


class FenwickMachine(RuleBasedStateMachine):
    """Fenwick prefix sums must match a plain array at all times."""

    SIZE = 16

    def __init__(self):
        super().__init__()
        self.tree = FenwickTree(self.SIZE)
        self.reference = [0] * self.SIZE

    @rule(index=st.integers(0, SIZE - 1), amount=st.integers(1, 9))
    def add(self, index, amount):
        self.tree.add(index, amount)
        self.reference[index] += amount

    @rule(index=st.integers(0, SIZE - 1))
    def check_prefix(self, index):
        assert self.tree.prefix_sum(index) == sum(self.reference[: index + 1])

    @rule(lo=st.integers(0, SIZE - 1), hi=st.integers(0, SIZE - 1))
    def check_range(self, lo, hi):
        expected = sum(self.reference[lo: hi + 1]) if lo <= hi else 0
        assert self.tree.range_sum(lo, hi) == expected

    @invariant()
    def total_matches(self):
        assert self.tree.total() == sum(self.reference)


class OracleMachine(RuleBasedStateMachine):
    """The oracle's accounting is exact under arbitrary probe sequences."""

    def __init__(self):
        super().__init__()
        gen = np.random.default_rng(0)
        self.n = 12
        labels = gen.integers(0, 2, size=self.n)
        self.truth = labels
        points = PointSet([(float(i),) for i in range(self.n)], labels)
        self.oracle = LabelOracle(points)
        self.asked: set = set()
        self.requests = 0

    @rule(index=st.integers(0, 11))
    def probe(self, index):
        label = self.oracle.probe(index)
        assert label == self.truth[index]
        self.asked.add(index)
        self.requests += 1

    @invariant()
    def cost_counts_distinct(self):
        assert self.oracle.cost == len(self.asked)
        assert self.oracle.total_requests == self.requests

    @invariant()
    def revealed_matches_truth(self):
        revealed = self.oracle.revealed_labels(self.n)
        for i in self.asked:
            assert revealed[i] == self.truth[i]


TestThresholdIndexMachine = ThresholdIndexMachine.TestCase
TestThresholdIndexMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)

TestFenwickMachine = FenwickMachine.TestCase
TestFenwickMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)

TestOracleMachine = OracleMachine.TestCase
TestOracleMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)
