"""Tests for the differential fuzzing subsystem (repro.fuzz).

The centerpiece is the mutation self-test: a fuzzer that has never caught
a bug proves nothing, so we point the campaign at a deliberately broken
solver and assert the whole detect → shrink → archive → replay loop
closes (ISSUE acceptance: disagreement found, reproducer shrunk to a
handful of points, corpus round-trips deterministically).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings

from repro import PointSet
from repro.fuzz import (
    ALL_PASSIVE_CONFIGS,
    FAMILIES,
    apply_mutant,
    check_poset_structure,
    fuzz_io_roundtrip,
    generate,
    iter_corpus,
    load_reproducer,
    mutate_bytes,
    replay_corpus,
    run_flow_differential,
    run_fuzz,
    run_passive_differential,
    save_reproducer,
    shrink_instance,
)
from repro.fuzz.runner import IO_FAMILY

from tests.strategies import flow_networks, point_sets

CORPUS_DIR = Path(__file__).parent / "corpus"


class TestGenerators:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_family_produces_valid_instances(self, family, rng):
        points = generate(family, rng, 32)
        assert isinstance(points, PointSet)
        assert 1 <= points.n <= 64
        assert np.isfinite(points.coords).all()
        assert set(np.unique(points.labels)) <= {0, 1}

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_families_are_deterministic(self, family):
        a = generate(family, np.random.default_rng(7), 24)
        b = generate(family, np.random.default_rng(7), 24)
        np.testing.assert_array_equal(a.coords, b.coords)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_unknown_family_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown"):
            generate("no_such_family", rng, 8)

    def test_mutate_bytes_deterministic(self):
        text = "a,b,c\n1,2,3\n"
        a = mutate_bytes(text, np.random.default_rng(5), mutations=3)
        b = mutate_bytes(text, np.random.default_rng(5), mutations=3)
        assert isinstance(a, bytes) and a == b


class TestPassiveDifferential:
    def test_clean_on_healthy_instances(self, tiny_2d, monotone_2d):
        assert run_passive_differential(tiny_2d) == []
        assert run_passive_differential(monotone_2d) == []

    def test_uniform_rejection_is_not_a_finding(self):
        # Ill-conditioned weights: every configuration raises the same
        # clean ValueError — the validation boundary working as designed.
        points = PointSet([(0.1,), (0.8,)], [1, 0], [1e-4, 1e11])
        assert run_passive_differential(points) == []
        with pytest.raises(ValueError, match="rescale"):
            from repro import solve_passive

            solve_passive(points)

    @settings(max_examples=20, deadline=None)
    @given(point_sets(max_n=10))
    def test_grid_agrees_with_brute_force_on_random_sets(self, points):
        # n <= 10 keeps the exponential oracle in the loop for every case.
        assert run_passive_differential(points) == []


class TestFlowDifferential:
    @settings(max_examples=25, deadline=None)
    @given(flow_networks())
    def test_backends_agree_and_flows_are_feasible(self, case):
        network, source, sink = case
        assert run_flow_differential(network, source, sink) == []


class TestStructureCheck:
    def test_clean_reduction_passes(self, tiny_2d):
        assert check_poset_structure(tiny_2d) == []

    def test_catches_uint8_overflow_on_long_chain(self):
        # The historical mod-256 bug needs >= 258 comparable points: the
        # (top, bottom) pair of a 258-chain has 256 points strictly
        # between, which a uint8 counter wraps to zero.
        n = 258
        chain = PointSet(np.arange(n, dtype=float).reshape(-1, 1),
                         np.zeros(n, dtype=int))
        assert check_poset_structure(chain) == []
        with apply_mutant("hasse_uint8_overflow"):
            findings = check_poset_structure(chain)
        assert findings and findings[0].kind == "structure"
        assert "non-covering" in findings[0].detail

    def test_mutants_restore_on_exit(self):
        from repro.core import passive
        from repro.poset import sparse

        original_red = sparse.transitive_reduction
        original_inf = passive._effective_infinity
        with apply_mutant("hasse_uint8_overflow"):
            assert sparse.transitive_reduction is not original_red
        with apply_mutant("capacity_plus_one"):
            assert passive._effective_infinity is not original_inf
        assert sparse.transitive_reduction is original_red
        assert passive._effective_infinity is original_inf

    def test_unknown_mutant_rejected(self):
        with pytest.raises(ValueError, match="unknown mutant"):
            with apply_mutant("nope"):
                pass


class TestShrink:
    def test_shrinks_to_single_required_point(self, rng):
        coords = rng.random((40, 2))
        coords[17] = (100.0, 100.0)
        points = PointSet(coords, rng.integers(0, 2, size=40))

        def has_beacon(candidate: PointSet) -> bool:
            return bool((candidate.coords == 100.0).any())

        shrunk, evaluations = shrink_instance(points, has_beacon)
        assert shrunk.n == 1
        assert float(shrunk.coords[0, 0]) == 100.0
        assert evaluations > 0

    def test_requires_failing_original(self, tiny_2d):
        with pytest.raises(ValueError, match="predicate does not hold"):
            shrink_instance(tiny_2d, lambda candidate: False)

    def test_is_deterministic(self, rng):
        coords = rng.random((30, 2))
        points = PointSet(coords, rng.integers(0, 2, size=30))

        def pair(candidate: PointSet) -> bool:
            return candidate.n >= 2 and bool(
                (candidate.coords[:, 0] > 0.5).any()
                and (candidate.coords[:, 0] < 0.5).any())

        first, _ = shrink_instance(points, pair)
        second, _ = shrink_instance(points, pair)
        np.testing.assert_array_equal(first.coords, second.coords)


class TestCorpus:
    def test_save_is_idempotent_and_loads_back(self, tiny_2d, tmp_path):
        a = save_reproducer(tmp_path, tiny_2d, family="chain", seed=1,
                            findings=[])
        b = save_reproducer(tmp_path, tiny_2d, family="chain", seed=1,
                            findings=[])
        assert a == b and a.exists()
        loaded, meta = load_reproducer(a)
        np.testing.assert_array_equal(loaded.coords, tiny_2d.coords)
        np.testing.assert_array_equal(loaded.labels, tiny_2d.labels)
        np.testing.assert_array_equal(loaded.weights, tiny_2d.weights)
        assert meta["family"] == "chain" and meta["seed"] == 1

    def test_malformed_entries_rejected(self, tmp_path):
        bad = tmp_path / "repro-x-000000000000.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="JSON"):
            load_reproducer(bad)
        bad.write_text(json.dumps({"schema": 999, "points": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_reproducer(bad)
        bad.write_text(json.dumps({"no": "points"}))
        with pytest.raises(ValueError, match="points"):
            load_reproducer(bad)

    def test_seed_corpus_exists_and_replays_clean(self):
        # tier-1 regression gate: every archived bug must stay fixed.
        entries = list(iter_corpus(CORPUS_DIR))
        assert entries, f"seed corpus missing under {CORPUS_DIR}"
        failures = replay_corpus(CORPUS_DIR)
        assert failures == [], (
            "corpus entries disagree again: "
            + "; ".join(f"{path.name}: {[str(f) for f in fs]}"
                        for path, fs in failures))


class TestMutantSelfTest:
    """ISSUE acceptance: the fuzzer must catch a deliberately broken solver."""

    def test_detect_shrink_archive_replay_loop(self, tmp_path):
        corpus = tmp_path / "corpus"
        report = run_fuzz(runs=4, seed=3, families=["duplicates"], size=24,
                          corpus_dir=str(corpus),
                          mutant="hasse_index_tie_break")
        assert not report.ok, "mutant was not detected"
        assert report.reproducers, "no reproducer archived"

        for path in report.reproducers:
            shrunk, meta = load_reproducer(path)
            assert shrunk.n <= 12, f"{path}: shrunk to {shrunk.n} points"
            assert meta["mutant"] == "hasse_index_tie_break"
            # Round-trip determinism: re-saving the loaded instance lands
            # on the identical file (content digest unchanged).
            again = save_reproducer(corpus, shrunk, family=meta["family"],
                                    seed=meta["seed"],
                                    findings=meta["findings"],
                                    mutant=meta["mutant"])
            assert str(again) == path

        # With the mutant gone the archived instances must agree again.
        assert replay_corpus(corpus) == []

    def test_reproducer_still_fails_under_mutant(self, tmp_path):
        corpus = tmp_path / "corpus"
        report = run_fuzz(runs=4, seed=3, families=["duplicates"], size=24,
                          corpus_dir=str(corpus),
                          mutant="hasse_index_tie_break")
        assert report.reproducers
        points, _meta = load_reproducer(report.reproducers[0])
        with apply_mutant("hasse_index_tie_break"):
            assert run_passive_differential(
                points, configs=ALL_PASSIVE_CONFIGS), \
                "shrunk reproducer no longer triggers the mutant"


class TestIOFuzz:
    def test_loader_boundary_survives_mutations(self, tiny_2d, rng):
        tried, violations = fuzz_io_roundtrip(tiny_2d, rng,
                                              mutations_per_text=16)
        assert tried == 32
        assert violations == []


class TestRunner:
    def test_small_clean_campaign(self, tmp_path):
        report = run_fuzz(runs=9, seed=11, size=16,
                          corpus_dir=str(tmp_path / "corpus"))
        assert report.ok and report.runs == 9
        assert set(report.instances_by_family) <= set(FAMILIES) | {IO_FAMILY}
        assert report.reproducers == []

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="runs"):
            run_fuzz(runs=-1)
        with pytest.raises(ValueError, match="unknown fuzz family"):
            run_fuzz(runs=1, families=["nope"])

    def test_time_budget_truncates_deterministically(self):
        full = run_fuzz(runs=6, seed=2, families=["random"], size=12)
        truncated = run_fuzz(runs=6, seed=2, families=["random"], size=12,
                             time_budget=0.0)
        assert truncated.truncated_by_budget
        assert truncated.runs < full.runs
