"""Tests for Mirsky partitions and heights (repro.poset.mirsky)."""

from __future__ import annotations

from itertools import combinations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PointSet, dominance_width
from repro.poset.mirsky import (
    heights,
    longest_chain_length,
    mirsky_antichain_partition,
)
from repro.poset.width import is_antichain


class TestHeights:
    def test_chain_heights_increase(self):
        ps = PointSet([(float(i),) for i in range(5)], [0] * 5)
        assert sorted(heights(ps).tolist()) == [1, 2, 3, 4, 5]

    def test_antichain_all_height_one(self):
        ps = PointSet([(float(i), float(-i)) for i in range(4)], [0] * 4)
        assert (heights(ps) == 1).all()

    def test_tiny_example(self, tiny_2d):
        h = heights(tiny_2d)
        # (0,0) minimal; (1,1) and (2,0) at height 2; (2,2) at height 3.
        assert h[0] == 1 and h[1] == 2 and h[2] == 2 and h[3] == 3

    def test_empty(self):
        assert heights(PointSet.from_points([])).shape == (0,)


class TestLongestChain:
    def test_known_values(self, tiny_2d):
        assert longest_chain_length(tiny_2d) == 3

    def test_duplicates_chain_through_tie_break(self):
        ps = PointSet([(1.0,)] * 4, [0] * 4)
        assert longest_chain_length(ps) == 4

    def test_brute_force_agreement(self):
        gen = np.random.default_rng(0)
        for _ in range(15):
            n = int(gen.integers(1, 10))
            ps = PointSet(gen.integers(0, 4, size=(n, 2)).astype(float),
                          [0] * n)
            best = 0
            order = ps.weak_dominance_matrix()
            for size in range(1, n + 1):
                for combo in combinations(range(n), size):
                    # A chain: totally ordered under weak dominance.
                    if all(order[a, b] or order[b, a]
                           for a, b in combinations(combo, 2)):
                        best = max(best, size)
            assert longest_chain_length(ps) == best


class TestMirskyPartition:
    def test_levels_are_antichains_and_partition(self, tiny_2d):
        levels = mirsky_antichain_partition(tiny_2d)
        flat = [i for level in levels for i in level]
        assert sorted(flat) == list(range(4))
        for level in levels:
            assert is_antichain(tiny_2d, level)

    def test_level_count_equals_longest_chain(self):
        gen = np.random.default_rng(1)
        for _ in range(10):
            n = int(gen.integers(1, 25))
            ps = PointSet(gen.integers(0, 5, size=(n, 2)).astype(float),
                          [0] * n)
            levels = mirsky_antichain_partition(ps)
            assert len(levels) == longest_chain_length(ps)
            for level in levels:
                assert is_antichain(ps, level)

    def test_empty(self):
        assert mirsky_antichain_partition(PointSet.from_points([])) == []


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 16), st.integers(1, 3), st.integers(0, 10_000))
def test_width_times_height_covers_n(n, dim, seed):
    """Property (Dilworth x Mirsky): width * height >= n."""
    gen = np.random.default_rng(seed)
    ps = PointSet(gen.integers(0, 4, size=(n, dim)).astype(float), [0] * n)
    assert dominance_width(ps) * longest_chain_length(ps) >= n
