"""Tests for classification with exceptions (repro.core.exceptions_variant)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConstantClassifier,
    LabelOracle,
    PointSet,
    ThresholdClassifier,
    active_classify,
    error_count,
)
from repro.core.exceptions_variant import (
    ExceptionAugmentedClassifier,
    error_decomposition,
    exception_error,
    with_exceptions,
)
from repro.datasets.synthetic import planted_threshold_1d, width_controlled


class TestExceptionAugmentedClassifier:
    def test_exception_overrides_base(self):
        base = ConstantClassifier(0)
        h = ExceptionAugmentedClassifier(base, {(1.0,): 1})
        assert h.classify((1.0,)) == 1
        assert h.classify((2.0,)) == 0

    def test_matrix_classification(self):
        base = ThresholdClassifier(0.5)
        h = ExceptionAugmentedClassifier(base, {(0.2,): 1, (0.9,): 0})
        coords = np.array([[0.2], [0.9], [0.6]])
        assert list(h.classify_matrix(coords)) == [1, 0, 1]

    def test_rejects_bad_label(self):
        with pytest.raises(ValueError):
            ExceptionAugmentedClassifier(ConstantClassifier(0), {(0.0,): 2})

    def test_repr(self):
        h = ExceptionAugmentedClassifier(ConstantClassifier(1), {(0.0,): 0})
        assert "num_exceptions=1" in repr(h)


class TestWithExceptions:
    def test_memorizes_probed_labels(self):
        ps = PointSet([(0.0,), (1.0,), (2.0,)], [1, 0, 1])
        oracle = LabelOracle(ps)
        oracle.probe(0)
        oracle.probe(2)
        h = with_exceptions(ConstantClassifier(0), ps, oracle)
        assert h.num_exceptions == 2
        # Probed points are scored correctly; the unprobed one follows base.
        assert exception_error(ps, h) == 0.0 + (1 if ps.labels[1] != 0 else 0)

    def test_exceptions_never_hurt(self):
        """The variant's error <= the standard error, always."""
        ps = planted_threshold_1d(2_000, noise=0.1, rng=0)
        from repro import active_classify_1d

        oracle = LabelOracle(ps)
        result = active_classify_1d(ps.with_hidden_labels(), oracle,
                                    epsilon=0.5, rng=1)
        decomposition = error_decomposition(ps, result.classifier, oracle)
        assert decomposition["exceptions_error"] <= decomposition["standard_error"]
        assert decomposition["saving"] >= 0
        assert decomposition["num_exceptions"] == oracle.cost

    def test_probe_all_gives_zero_variant_error(self):
        """Memorizing every label makes the variant error vanish."""
        ps = planted_threshold_1d(200, noise=0.3, rng=2)
        oracle = LabelOracle(ps)
        oracle.probe_many(range(ps.n))
        h = with_exceptions(ConstantClassifier(0), ps, oracle)
        assert exception_error(ps, h) == 0.0

    def test_weighted_variant(self):
        ps = PointSet([(0.0,), (1.0,)], [1, 1], [5.0, 7.0])
        oracle = LabelOracle(ps)
        oracle.probe(0)
        h = with_exceptions(ConstantClassifier(0), ps, oracle)
        # Point 0 memorized (correct); point 1 misclassified: weight 7.
        assert exception_error(ps, h, weighted=True) == 7.0

    def test_duplicate_coordinates_last_probe_wins(self):
        ps = PointSet([(1.0,), (1.0,)], [0, 1])
        oracle = LabelOracle(ps)
        oracle.probe(0)
        oracle.probe(1)
        h = with_exceptions(ConstantClassifier(0), ps, oracle)
        assert h.num_exceptions == 1
        # One of the duplicate pair is necessarily misclassified.
        assert exception_error(ps, h) == 1.0


class TestEndToEnd:
    def test_active_run_with_exceptions_evaluation(self):
        ps = width_controlled(3_000, 4, noise=0.1, rng=3)
        oracle = LabelOracle(ps)
        result = active_classify(ps.with_hidden_labels(), oracle,
                                 epsilon=0.5, rng=4)
        augmented = with_exceptions(result.classifier, ps, oracle)
        standard = error_count(ps, result.classifier)
        variant = exception_error(ps, augmented)
        assert variant <= standard
