"""Tests for the Theorem 4 min-cut passive solver (repro.core.passive)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    PointSet,
    brute_force_passive,
    is_monotone_assignment,
    solve_passive,
    solve_passive_1d,
    weighted_error,
)
from repro.core.passive import contending_mask
from repro.datasets.synthetic import planted_monotone
from repro.flow import FLOW_BACKENDS


class TestContendingMask:
    def test_monotone_labeling_has_no_contenders(self, monotone_2d):
        assert not contending_mask(monotone_2d).any()

    def test_conflicting_pair(self):
        ps = PointSet([(0.0, 0.0), (1.0, 1.0)], [1, 0])
        assert contending_mask(ps).all()

    def test_duplicates_with_opposite_labels_contend(self):
        ps = PointSet([(1.0, 1.0), (1.0, 1.0)], [0, 1])
        assert contending_mask(ps).all()

    def test_figure2a_exact_sets(self):
        from repro.datasets.figures import FIGURE1_CONTENDING, figure1_point_set

        ps = figure1_point_set()
        mask = contending_mask(ps)
        for label in (0, 1):
            got = sorted(f"p{i + 1}"
                         for i in np.flatnonzero(mask & (ps.labels == label)))
            assert got == sorted(FIGURE1_CONTENDING[label])

    def test_empty(self):
        assert contending_mask(PointSet.from_points([])).shape == (0,)


class TestSolvePassive:
    def test_tiny_example(self, tiny_2d):
        result = solve_passive(tiny_2d)
        assert result.optimal_error == 1.0
        assert is_monotone_assignment(tiny_2d, result.assignment)
        assert weighted_error(tiny_2d, result.classifier) == 1.0

    def test_monotone_input_zero_error(self, monotone_2d):
        result = solve_passive(monotone_2d)
        assert result.optimal_error == 0.0
        assert list(result.assignment) == list(monotone_2d.labels)

    def test_empty_input(self):
        result = solve_passive(PointSet.from_points([]))
        assert result.optimal_error == 0.0

    def test_classifier_extends_beyond_input(self, tiny_2d):
        result = solve_passive(tiny_2d)
        # Any point dominating everything must be classified like the top.
        top = result.classifier.classify((10.0, 10.0))
        assert top == result.assignment[3]

    def test_figure1_unweighted(self):
        from repro.datasets.figures import figure1_point_set

        assert solve_passive(figure1_point_set()).optimal_error == 3.0

    def test_figure1_weighted(self):
        from repro.datasets.figures import figure1_weighted_point_set

        result = solve_passive(figure1_weighted_point_set())
        assert result.optimal_error == 104.0
        assert result.flow_value == pytest.approx(104.0)

    def test_backends_agree(self, rng):
        ps = planted_monotone(150, 3, noise=0.2, rng=1, weights="random")
        dinic = solve_passive(ps, backend="dinic")
        push = solve_passive(ps, backend="push_relabel")
        assert dinic.optimal_error == pytest.approx(push.optimal_error)

    def test_without_contending_reduction_same_answer(self, rng):
        ps = planted_monotone(120, 2, noise=0.2, rng=2, weights="random")
        a = solve_passive(ps, use_contending_reduction=True)
        b = solve_passive(ps, use_contending_reduction=False)
        assert a.optimal_error == pytest.approx(b.optimal_error)
        assert a.num_contending <= b.num_contending

    def test_agrees_with_1d_exact(self, rng):
        values = rng.random((200, 1))
        labels = (values[:, 0] > 0.5).astype(int)
        flips = rng.random(200) < 0.3
        labels = np.where(flips, 1 - labels, labels)
        weights = rng.random(200) + 0.1
        ps = PointSet(values, labels, weights)
        assert solve_passive(ps).optimal_error == \
            pytest.approx(solve_passive_1d(ps).optimal_error)

    def test_heavy_weights_steer_the_cut(self):
        # A label-1 point below a label-0 point: flip whichever is lighter.
        ps = PointSet([(0.0,), (1.0,)], [1, 0], [10.0, 1.0])
        result = solve_passive(ps)
        assert result.optimal_error == 1.0
        assert list(result.assignment) == [1, 1]
        ps2 = PointSet([(0.0,), (1.0,)], [1, 0], [1.0, 10.0])
        result2 = solve_passive(ps2)
        assert result2.optimal_error == 1.0
        assert list(result2.assignment) == [0, 0]

    def test_requires_labels(self, tiny_2d):
        with pytest.raises(ValueError):
            solve_passive(tiny_2d.with_hidden_labels())


class TestBruteForce:
    def test_guard(self):
        ps = PointSet(np.zeros((20, 1)), [0] * 20)
        with pytest.raises(ValueError):
            brute_force_passive(ps)

    def test_tiny(self, tiny_2d):
        assert brute_force_passive(tiny_2d) == 1.0


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 10), st.integers(1, 3), st.integers(0, 100_000))
def test_solver_matches_brute_force(n, dim, seed):
    """Property (Theorem 4): min-cut optimum equals exhaustive optimum."""
    gen = np.random.default_rng(seed)
    coords = gen.integers(0, 4, size=(n, dim)).astype(float)
    labels = gen.integers(0, 2, size=n)
    weights = gen.random(n) + 0.1
    ps = PointSet(coords, labels, weights)
    result = solve_passive(ps)
    assert result.optimal_error == pytest.approx(brute_force_passive(ps))
    assert is_monotone_assignment(ps, result.assignment)
    assert weighted_error(ps, result.assignment) == pytest.approx(result.optimal_error)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 9), st.integers(0, 100_000))
def test_both_backends_match_brute_force(n, seed):
    """Property: push-relabel solves the reduction exactly, too."""
    gen = np.random.default_rng(seed)
    coords = gen.integers(0, 3, size=(n, 2)).astype(float)
    labels = gen.integers(0, 2, size=n)
    ps = PointSet(coords, labels)
    expected = brute_force_passive(ps)
    assert solve_passive(ps, backend="push_relabel").optimal_error == \
        pytest.approx(expected)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 10), st.integers(1, 3), st.integers(0, 100_000))
def test_hasse_reduction_matches_brute_force(n, dim, seed):
    """Property: the Hasse-reduced network solves Problem 2 exactly.

    Low-cardinality coordinates make duplicate vectors with opposing
    labels common, exercising the label-aware tie-break of the reduced
    network's covering DAG.
    """
    gen = np.random.default_rng(seed)
    coords = gen.integers(0, 3, size=(n, dim)).astype(float)
    labels = gen.integers(0, 2, size=n)
    weights = gen.random(n) + 0.1
    ps = PointSet(coords, labels, weights)
    result = solve_passive(ps, use_hasse_reduction=True)
    assert result.optimal_error == pytest.approx(brute_force_passive(ps))
    assert is_monotone_assignment(ps, result.assignment)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 40), st.integers(1, 3), st.integers(0, 100_000))
def test_hasse_reduction_equals_default_path(n, dim, seed):
    """Equivalence on random weighted inputs beyond brute-force reach."""
    gen = np.random.default_rng(seed)
    coords = gen.integers(0, 5, size=(n, dim)).astype(float)
    labels = gen.integers(0, 2, size=n)
    weights = gen.uniform(0.5, 2.0, size=n)
    ps = PointSet(coords, labels, weights)
    dense = solve_passive(ps)
    hasse = solve_passive(ps, use_hasse_reduction=True)
    assert hasse.optimal_error == pytest.approx(dense.optimal_error)
    assert is_monotone_assignment(ps, hasse.assignment)
    assert weighted_error(ps, hasse.assignment) == \
        pytest.approx(hasse.optimal_error)


class TestHasseReduction:
    def test_opposing_duplicates(self):
        """Equal coordinate vectors with labels (0, 1) must cost one flip.

        This is the case the label-aware tie-break exists for: with an
        index tie-break in the wrong direction the reduced network would
        miss the constraint and report zero error.
        """
        ps = PointSet([(1.0, 1.0), (1.0, 1.0)], [0, 1], [3.0, 5.0])
        result = solve_passive(ps, use_hasse_reduction=True)
        assert result.optimal_error == pytest.approx(3.0)

    def test_acceptance_4096_chain_structured(self):
        """Acceptance case: n = 4096, d = 3, same optimum, fewer inf edges.

        Sixteen 3-D chains of 256 points; labels are a per-chain threshold
        with 5% flips and random weights.  Within a chain the closure holds
        a quadratic number of cross-label pairs while the Hasse network
        keeps one covering edge per consecutive pair, so the reduced
        network must be measurably smaller (counters) at the same optimum.
        """
        from repro import obs

        rng = np.random.default_rng(7)
        num_chains, length = 16, 256
        spread = 10 * length
        coords, labels = [], []
        for j in range(num_chains):
            for t in range(length):
                coords.append((t + j * spread, t - j * spread, float(t)))
                labels.append(int(t >= length // 2))
        labels = np.array(labels)
        flip = rng.random(num_chains * length) < 0.05
        labels[flip] ^= 1
        weights = rng.uniform(0.5, 2.0, size=num_chains * length)
        ps = PointSet(np.array(coords, dtype=float), labels, weights)
        assert ps.n == 4096 and ps.dim == 3

        with obs.metrics_session() as dense_reg:
            dense = solve_passive(ps)
        with obs.metrics_session() as hasse_reg:
            hasse = solve_passive(ps, use_hasse_reduction=True)

        assert hasse.optimal_error == pytest.approx(dense.optimal_error)
        closure_edges = dense_reg.counter_value("passive.dominance_pairs")
        kept = hasse_reg.counter_value("passive.hasse_edges_kept")
        assert kept < closure_edges
        # The covering DAG of k disjoint chains has exactly n - k edges.
        assert kept == ps.n - num_chains


class TestWeightScaleGuard:
    """The effective-infinity / conditioning guard on extreme weights.

    Found by the differential fuzzer: a min-cut of ~1e-4 computed among
    ~1e11-scale capacities drowns in flow rounding noise (push-relabel
    briefly saturates the whole source side), tripping a backend-dependent
    assertion.  The guard turns that into a uniform, actionable ValueError.
    """

    @pytest.mark.parametrize("backend", sorted(FLOW_BACKENDS))
    def test_ill_conditioned_weights_rejected_uniformly(self, backend):
        ps = PointSet([(0.1,), (0.8,)], [1, 0], [1e-4, 1e11])
        with pytest.raises(ValueError, match="rescale the weights"):
            solve_passive(ps, backend=backend)

    def test_overflowing_total_rejected(self):
        ps = PointSet([(0.1,), (0.8,)], [1, 0], [1e308, 1e308])
        with pytest.raises(ValueError, match="rescale the weights"):
            solve_passive(ps)

    def test_uniform_huge_weights_still_solve(self):
        # All-large weights are fine: the optimum is itself large, so the
        # relative certificate tolerance absorbs the rounding noise.  This
        # is the regime where "+ 1.0" would be silently absorbed, so the
        # capacity fallback (2 * total) must kick in.
        scale = 1e16
        ps = PointSet([(0.0, 0.0), (1.0, 1.0), (2.0, 0.0), (2.0, 2.0)],
                      [1, 0, 0, 1],
                      [scale, 2 * scale, 2 * scale, scale])
        result = solve_passive(ps)
        assert result.optimal_error == pytest.approx(scale, rel=1e-9)

    def test_moderate_scales_unaffected(self):
        ps = PointSet([(0.1,), (0.8,)], [1, 0], [1e-4, 1e6])
        assert solve_passive(ps).optimal_error == pytest.approx(1e-4)
