"""Tests for monotone classifier compositions (AND/OR closure)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ThresholdClassifier, UpsetClassifier
from repro.core.classifier import (
    ConstantClassifier,
    IntersectionClassifier,
    UnionClassifier,
)


class TestConstruction:
    def test_requires_members(self):
        with pytest.raises(ValueError):
            IntersectionClassifier([])
        with pytest.raises(ValueError):
            UnionClassifier([])

    def test_rejects_non_classifiers(self):
        with pytest.raises(TypeError):
            IntersectionClassifier([lambda p: 1])

    def test_repr(self):
        c = UnionClassifier([ConstantClassifier(0), ConstantClassifier(1)])
        assert "members=2" in repr(c)


class TestSemantics:
    def test_intersection_is_and(self):
        both = IntersectionClassifier([
            ThresholdClassifier(0.5, dim=0),
            ThresholdClassifier(0.5, dim=1),
        ])
        assert both.classify((0.6, 0.6)) == 1
        assert both.classify((0.6, 0.4)) == 0
        assert both.classify((0.4, 0.6)) == 0

    def test_union_is_or(self):
        either = UnionClassifier([
            ThresholdClassifier(0.5, dim=0),
            ThresholdClassifier(0.5, dim=1),
        ])
        assert either.classify((0.6, 0.4)) == 1
        assert either.classify((0.4, 0.6)) == 1
        assert either.classify((0.4, 0.4)) == 0

    def test_intersection_of_thresholds_is_box_upset(self):
        """AND of per-axis thresholds == upset of the corner point."""
        both = IntersectionClassifier([
            ThresholdClassifier(0.3, dim=0),
            ThresholdClassifier(0.7, dim=1),
        ])
        gen = np.random.default_rng(0)
        coords = gen.random((200, 2))
        corner = UpsetClassifier([(0.3 + 1e-12, 0.7 + 1e-12)])
        # Strict vs weak at the exact boundary differs on a null set only;
        # random points avoid it almost surely.
        assert (both.classify_matrix(coords)
                == corner.classify_matrix(coords)).all()

    def test_nesting(self):
        nested = UnionClassifier([
            IntersectionClassifier([ThresholdClassifier(0.8, dim=0),
                                    ThresholdClassifier(0.2, dim=1)]),
            IntersectionClassifier([ThresholdClassifier(0.2, dim=0),
                                    ThresholdClassifier(0.8, dim=1)]),
        ])
        assert nested.classify((0.9, 0.3)) == 1
        assert nested.classify((0.3, 0.9)) == 1
        assert nested.classify((0.5, 0.5)) == 0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)),
                min_size=1, max_size=4),
       st.tuples(st.floats(0, 1), st.floats(0, 1)),
       st.tuples(st.floats(0, 0.5), st.floats(0, 0.5)))
def test_compositions_preserve_monotonicity(anchor_rows, base, delta):
    """Property: AND/OR of monotone classifiers stay monotone."""
    members = [UpsetClassifier([a]) for a in anchor_rows]
    members.append(ThresholdClassifier(0.4, dim=0))
    above = (base[0] + delta[0], base[1] + delta[1])
    for composite in (IntersectionClassifier(members),
                      UnionClassifier(members)):
        assert composite.classify(above) >= composite.classify(base)


@settings(max_examples=30, deadline=None)
@given(st.tuples(st.floats(0, 1), st.floats(0, 1)))
def test_de_morgan_like_bounds(point):
    """AND <= each member <= OR, pointwise."""
    members = [ThresholdClassifier(0.3, dim=0), ThresholdClassifier(0.6, dim=1)]
    lower = IntersectionClassifier(members).classify(point)
    upper = UnionClassifier(members).classify(point)
    for member in members:
        value = member.classify(point)
        assert lower <= value <= upper
