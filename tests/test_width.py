"""Tests for dominance width and anti-chain certificates (repro.poset.width)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PointSet, dominance_width, maximum_antichain
from repro.datasets.synthetic import width_controlled
from repro.poset.width import brute_force_width, is_antichain


class TestDominanceWidth:
    def test_empty(self):
        assert dominance_width(PointSet.from_points([])) == 0

    def test_single_point(self):
        assert dominance_width(PointSet([(0.0,)], [0])) == 1

    def test_chain_has_width_one(self):
        ps = PointSet([(float(i), float(i)) for i in range(8)], [0] * 8)
        assert dominance_width(ps) == 1

    def test_antichain_has_width_n(self):
        ps = PointSet([(float(i), float(-i)) for i in range(8)], [0] * 8)
        assert dominance_width(ps) == 8

    def test_duplicates_are_comparable(self):
        ps = PointSet([(1.0, 1.0)] * 5, [0] * 5)
        assert dominance_width(ps) == 1

    def test_width_controlled_generator(self):
        for w in (1, 3, 9):
            ps = width_controlled(90, w, rng=0)
            assert dominance_width(ps) == w

    def test_figure1_width_is_six(self):
        from repro.datasets.figures import figure1_point_set

        assert dominance_width(figure1_point_set()) == 6


class TestMaximumAntichain:
    def test_certificate_is_antichain_of_width_size(self):
        gen = np.random.default_rng(7)
        for _ in range(10):
            n = int(gen.integers(2, 30))
            dim = int(gen.integers(2, 4))
            ps = PointSet(gen.integers(0, 5, size=(n, dim)).astype(float), [0] * n)
            antichain = maximum_antichain(ps)
            assert is_antichain(ps, antichain)
            assert len(antichain) == dominance_width(ps)

    def test_empty(self):
        assert maximum_antichain(PointSet.from_points([])) == []

    def test_total_order(self):
        ps = PointSet([(float(i),) for i in range(5)], [0] * 5)
        assert len(maximum_antichain(ps)) == 1


class TestIsAntichain:
    def test_rejects_comparable_pair(self, tiny_2d):
        assert not is_antichain(tiny_2d, [0, 3])

    def test_accepts_incomparable_pair(self, tiny_2d):
        assert is_antichain(tiny_2d, [1, 2])

    def test_duplicates_rejected(self):
        ps = PointSet([(1.0, 1.0), (1.0, 1.0)], [0, 0])
        assert not is_antichain(ps, [0, 1])

    def test_singleton_and_empty(self, tiny_2d):
        assert is_antichain(tiny_2d, [])
        assert is_antichain(tiny_2d, [0])


class TestBruteForceWidth:
    def test_guard(self):
        ps = PointSet(np.zeros((25, 2)), [0] * 25)
        with pytest.raises(ValueError):
            brute_force_width(ps)

    def test_small_exact(self, tiny_2d):
        assert brute_force_width(tiny_2d) == 2  # {(1,1),(2,0)}


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 12), st.integers(1, 3), st.integers(0, 10_000))
def test_width_matches_brute_force(n, dim, seed):
    """Property (Dilworth): decomposition width equals exhaustive width."""
    gen = np.random.default_rng(seed)
    ps = PointSet(gen.integers(0, 4, size=(n, dim)).astype(float), [0] * n)
    assert dominance_width(ps) == brute_force_width(ps)
