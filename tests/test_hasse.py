"""Tests for Hasse diagrams (repro.poset.hasse)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PointSet
from repro.poset.dominance import _order_matrix
from repro.poset.hasse import covers, hasse_edges, transitive_closure_from_hasse


class TestHasseEdges:
    def test_chain_has_consecutive_edges(self):
        ps = PointSet([(float(i),) for i in range(5)], [0] * 5)
        edges = set(hasse_edges(ps))
        assert edges == {(i, i + 1) for i in range(4)}

    def test_antichain_has_no_edges(self):
        ps = PointSet([(0.0, 2.0), (1.0, 1.0), (2.0, 0.0)], [0] * 3)
        assert hasse_edges(ps) == []

    def test_transitive_edge_removed(self, tiny_2d):
        edges = set(hasse_edges(tiny_2d))
        # (0,0) -> (2,2) is implied via (1,1) and via (2,0): not covering.
        assert (0, 3) not in edges
        assert (0, 1) in edges and (0, 2) in edges
        assert (1, 3) in edges and (2, 3) in edges

    def test_empty(self):
        assert hasse_edges(PointSet.from_points([])) == []

    def test_duplicates_chain_through_tie_break(self):
        ps = PointSet([(1.0,), (1.0,), (1.0,)], [0] * 3)
        edges = set(hasse_edges(ps))
        assert edges == {(0, 1), (1, 2)}

    def test_chain_258_no_uint8_overflow(self):
        """Regression: the old uint8 matrix product wrapped mod 256.

        On a 258-point chain, pair (0, 257) has exactly 256 intermediates,
        so its two-step count wrapped to 0 and the pair was falsely
        reported as covering.  A chain of n points has exactly n - 1
        covering edges, all consecutive.
        """
        ps = PointSet([(float(i),) for i in range(258)], [0] * 258)
        edges = hasse_edges(ps)
        assert len(edges) == 257
        assert (0, 257) not in edges
        assert set(edges) == {(i, i + 1) for i in range(257)}
        # covers() must agree with the edge list on the offending pair.
        assert not covers(ps, upper=257, lower=0)
        assert covers(ps, upper=257, lower=256)


class TestCovers:
    def test_direct_cover(self, tiny_2d):
        assert covers(tiny_2d, upper=1, lower=0)
        assert not covers(tiny_2d, upper=3, lower=0)  # something between
        assert not covers(tiny_2d, upper=0, lower=1)  # wrong direction


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 15), st.integers(1, 3), st.integers(0, 10_000))
def test_closure_of_hasse_recovers_order(n, dim, seed):
    """Property: transitive closure of covering edges == full order."""
    gen = np.random.default_rng(seed)
    ps = PointSet(gen.integers(0, 4, size=(n, dim)).astype(float), [0] * n)
    closure = transitive_closure_from_hasse(ps)
    assert (closure == _order_matrix(ps)).all()


@settings(max_examples=5, deadline=None)
@given(st.integers(257, 300), st.integers(1, 3), st.integers(0, 10_000))
def test_closure_of_hasse_recovers_order_past_uint8(n, dim, seed):
    """Property at n > 256, where the old uint8 product could wrap mod 256.

    Low-cardinality integer coordinates force long chains through the
    duplicate tie-break, so two-step counts routinely exceed 255.
    """
    gen = np.random.default_rng(seed)
    ps = PointSet(gen.integers(0, 3, size=(n, dim)).astype(float), [0] * n)
    closure = transitive_closure_from_hasse(ps)
    assert (closure == _order_matrix(ps)).all()
