"""Tests for Hasse diagrams (repro.poset.hasse)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PointSet
from repro.poset.dominance import _order_matrix
from repro.poset.hasse import covers, hasse_edges, transitive_closure_from_hasse


class TestHasseEdges:
    def test_chain_has_consecutive_edges(self):
        ps = PointSet([(float(i),) for i in range(5)], [0] * 5)
        edges = set(hasse_edges(ps))
        assert edges == {(i, i + 1) for i in range(4)}

    def test_antichain_has_no_edges(self):
        ps = PointSet([(0.0, 2.0), (1.0, 1.0), (2.0, 0.0)], [0] * 3)
        assert hasse_edges(ps) == []

    def test_transitive_edge_removed(self, tiny_2d):
        edges = set(hasse_edges(tiny_2d))
        # (0,0) -> (2,2) is implied via (1,1) and via (2,0): not covering.
        assert (0, 3) not in edges
        assert (0, 1) in edges and (0, 2) in edges
        assert (1, 3) in edges and (2, 3) in edges

    def test_empty(self):
        assert hasse_edges(PointSet.from_points([])) == []

    def test_duplicates_chain_through_tie_break(self):
        ps = PointSet([(1.0,), (1.0,), (1.0,)], [0] * 3)
        edges = set(hasse_edges(ps))
        assert edges == {(0, 1), (1, 2)}


class TestCovers:
    def test_direct_cover(self, tiny_2d):
        assert covers(tiny_2d, upper=1, lower=0)
        assert not covers(tiny_2d, upper=3, lower=0)  # something between
        assert not covers(tiny_2d, upper=0, lower=1)  # wrong direction


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 15), st.integers(1, 3), st.integers(0, 10_000))
def test_closure_of_hasse_recovers_order(n, dim, seed):
    """Property: transitive closure of covering edges == full order."""
    gen = np.random.default_rng(seed)
    ps = PointSet(gen.integers(0, 4, size=(n, dim)).astype(float), [0] * n)
    closure = transitive_closure_from_hasse(ps)
    assert (closure == _order_matrix(ps)).all()
