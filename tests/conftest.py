"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PointSet


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_2d() -> PointSet:
    """A hand-checkable 4-point 2-D set.

    Layout::

        (0,0) label 1   -- dominated by everything
        (1,1) label 0   -- dominates (0,0)
        (2,0) label 0   -- incomparable with (1,1), dominates (0,0)
        (2,2) label 1   -- dominates everything

    The only conflicts are (1,1) >= (0,0) and (2,0) >= (0,0) with label
    0 over label 1, so the optimum flips one point: k* = 1.
    """
    coords = [(0.0, 0.0), (1.0, 1.0), (2.0, 0.0), (2.0, 2.0)]
    labels = [1, 0, 0, 1]
    return PointSet(coords, labels)


@pytest.fixture
def monotone_2d() -> PointSet:
    """A 2-D set whose labeling is already monotone (k* = 0)."""
    coords = [(0.0, 0.0), (0.5, 2.0), (2.0, 0.5), (2.0, 2.0), (3.0, 3.0)]
    labels = [0, 0, 0, 1, 1]
    return PointSet(coords, labels)


def random_labeled_points(gen: np.random.Generator, n: int, dim: int,
                          weighted: bool = False) -> PointSet:
    """A random fully-labeled point set (arbitrary labeling, may be noisy)."""
    coords = gen.random((n, dim))
    labels = gen.integers(0, 2, size=n).astype(np.int8)
    weights = None
    if weighted:
        weights = gen.random(n) + 0.1
    return PointSet(coords, labels, weights)
