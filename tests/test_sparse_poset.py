"""Tests for the sparse poset engine (repro.poset.sparse) and the order cache."""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro import PointSet, obs
from repro.poset.dominance import _order_matrix, maximal_points, minimal_points
from repro.poset.hasse import hasse_edges
from repro.poset.sparse import (
    dominance_pair_count,
    maximal_points_sparse,
    minimal_points_sparse,
    order_matrix_blocks,
    transitive_reduction,
    weak_dominance_blocks,
)


def _random_set(n, dim, seed, cardinality=5):
    gen = np.random.default_rng(seed)
    return PointSet(gen.integers(0, cardinality, size=(n, dim)).astype(float),
                    [0] * n)


class TestBlockIterators:
    @pytest.mark.parametrize("n,dim,block", [(1, 1, 4), (37, 2, 8), (64, 3, 16),
                                             (100, 2, 7), (50, 1, 100)])
    def test_order_blocks_match_dense(self, n, dim, block):
        ps = _random_set(n, dim, seed=n + dim)
        stacked = np.vstack([b for _, _, b in order_matrix_blocks(ps, block)])
        assert (stacked == _order_matrix(ps)).all()

    @pytest.mark.parametrize("block", [3, 16, 1000])
    def test_weak_blocks_match_dense(self, block):
        ps = _random_set(45, 3, seed=0)
        stacked = np.vstack([b for _, _, b in weak_dominance_blocks(ps, block)])
        assert (stacked == ps.weak_dominance_matrix()).all()

    def test_empty_set(self):
        ps = PointSet.from_points([])
        assert list(order_matrix_blocks(ps)) == []
        assert minimal_points_sparse(ps) == []
        assert maximal_points_sparse(ps) == []
        assert dominance_pair_count(ps) == 0

    def test_blocks_serve_cache_when_materialized(self):
        ps = _random_set(30, 2, seed=1)
        dense = ps.order_matrix()
        with obs.metrics_session() as reg:
            blocks = [b for _, _, b in order_matrix_blocks(ps, 8)]
        assert reg.counter_value("poset.order_cache_hits") == 1
        # Served as views of the shared cache, not recomputed copies.
        assert all(b.base is dense for b in blocks)


class TestSparseConsumers:
    @pytest.mark.parametrize("seed", range(5))
    def test_minimal_maximal_match_dense(self, seed):
        ps = _random_set(60, 3, seed=seed)
        assert minimal_points_sparse(ps, 13) == minimal_points(ps)
        assert maximal_points_sparse(ps, 13) == maximal_points(ps)

    def test_pair_count_matches_dense(self):
        ps = _random_set(80, 2, seed=9)
        assert dominance_pair_count(ps, 17) == int(_order_matrix(ps).sum())

    def test_memory_bounded_by_block_size(self):
        """The block path must never materialize the O(n^2) matrix.

        At n = 1500 the dense boolean matrix is ~2.25 MB; with 64-row
        blocks the scratch peak is a few (64 x n) and (n x 64) boolean
        panels.  Assert the traced numpy peak stays far below the dense
        footprint (generous 1 MB bound to avoid allocator flakiness).
        """
        n = 1500
        gen = np.random.default_rng(3)
        coords = gen.uniform(size=(n, 3))
        ps = PointSet(coords, [0] * n)
        tracemalloc.start()
        tracemalloc.reset_peak()
        mins = minimal_points_sparse(ps, block_size=64)
        maxs = maximal_points_sparse(ps, block_size=64)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < 1_000_000, f"peak {peak} bytes suggests a dense intermediate"
        assert ps._weak_dom is None and ps._order is None  # nothing cached
        assert mins and maxs


class TestTransitiveReduction:
    def test_diamond(self):
        # 0 < 1, 0 < 2, 1 < 3, 2 < 3 with the transitive 0 < 3 removed.
        order = np.zeros((4, 4), dtype=bool)
        for up, lo in [(1, 0), (2, 0), (3, 1), (3, 2), (3, 0)]:
            order[up, lo] = True
        reduced = transitive_reduction(order)
        expected = order.copy()
        expected[3, 0] = False
        assert (reduced == expected).all()

    def test_closure_of_reduction_recovers_order(self):
        ps = _random_set(40, 2, seed=5)
        order = _order_matrix(ps)
        reduced = transitive_reduction(order)
        closure = reduced.copy()
        for k in range(ps.n):
            closure |= np.outer(closure[:, k], closure[k, :])
        assert (closure == order).all()

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            transitive_reduction(np.zeros((2, 3), dtype=bool))


class TestOrderMatrixCache:
    def test_cache_shared_across_helpers(self):
        ps = _random_set(25, 2, seed=7)
        first = ps.order_matrix()
        with obs.metrics_session() as reg:
            minimal_points(ps)
            maximal_points(ps)
            hasse_edges(ps)
        assert ps.order_matrix() is first
        assert reg.counter_value("poset.order_cache_hits") >= 3

    def test_cache_is_write_protected(self):
        ps = _random_set(10, 2, seed=8)
        order = ps.order_matrix()
        with pytest.raises(ValueError):
            order[0, 0] = True

    def test_cache_matches_fresh_computation(self):
        ps = _random_set(35, 3, seed=11)
        cached = ps.order_matrix()
        weak = ps.weak_dominance_matrix()
        equal = weak & weak.T
        idx = np.arange(ps.n)
        expected = (weak & ~equal) | (equal & (idx[:, None] > idx[None, :]))
        assert (cached == expected).all()
