"""Chaos load tests for the serving layer (ISSUE 9 acceptance bar).

The headline campaign pushes >= 100k queries through a
:class:`~repro.serve.ServeEngine` while the deterministic fault injector
corrupts artifacts on disk, delays loads, and kills workers mid-journal.
The invariant: **zero silently wrong answers** — every response flagged
``ok`` matches the pristine model exactly, every other response carries an
explicit degraded/overloaded/expired flag — and a corrupt artifact never
takes the server down (quarantine + ladder instead).
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.core.points import PointSet
from repro.serve import (
    ServeEngine,
    ServeFaultSpec,
    fit_artifact,
    last_good_path,
    load_artifact,
    read_serve_journal,
    run_chaos_serve,
    save_artifact,
)


@pytest.fixture(scope="module")
def deployed_artifact(tmp_path_factory):
    rng = np.random.default_rng(42)
    coords = rng.random((80, 2))
    labels = (coords.sum(axis=1) > 1.0).astype(int)
    labels[:6] ^= 1
    artifact = fit_artifact(PointSet(coords, labels), "passive")
    path = tmp_path_factory.mktemp("deploy") / "model.json"
    save_artifact(artifact, path)
    return path


class TestChaosCampaign:
    def test_100k_queries_zero_silently_wrong(self, deployed_artifact,
                                              tmp_path):
        """The acceptance campaign: all three fault kinds active."""
        from repro import obs

        registry = obs.MetricsRegistry("serve-chaos")
        with obs.metrics_session(registry):
            report = run_chaos_serve(
                deployed_artifact,
                queries=100_000,
                batch_size=512,
                spec=ServeFaultSpec(corrupt_rate=0.08, delay_rate=0.15,
                                    kill_rate=0.03, seed=13),
                workdir=tmp_path / "chaos",
            )
        assert report.queries >= 100_000
        # The core invariant: no silently wrong answers, server never dark.
        assert report.wrong_answers == 0
        assert report.failed == 0
        assert report.ok
        # All three fault kinds actually fired.
        assert report.corruptions > 0
        assert report.delays > 0
        assert report.kills > 0 and report.restarts == report.kills
        # Corruption was survived by quarantine, not by crashing.
        assert report.quarantines >= report.corruptions
        # Load shedding was exercised and explicit.
        assert report.shed > 0
        assert report.counts_by_status.get("overloaded", 0) == report.shed
        # Latency histograms flowed through repro.obs.
        assert "serve.request_seconds" in registry.timers
        timer = registry.timers["serve.request_seconds"]
        assert timer.count == report.counts_by_status.get("ok", 0) + \
            report.counts_by_status.get("degraded", 0)
        assert registry.counters["serve.chaos.corruptions"].value == \
            report.corruptions

    def test_degraded_rung_answers_are_flagged(self, deployed_artifact,
                                               tmp_path):
        """Without a last-good rung every corruption forces the fallback:
        degraded answers must appear and must all be flagged."""
        report = run_chaos_serve(
            deployed_artifact,
            queries=20_000,
            batch_size=512,
            spec=ServeFaultSpec(corrupt_rate=0.3, delay_rate=0.4, seed=29),
            keep_last_good=False,
            workdir=tmp_path / "nolg",
        )
        assert report.ok
        assert report.degraded_answers > 0
        # Degraded answers came from the trivial fallback, so they *do*
        # diverge from the real model — visibly, never silently.
        assert report.degraded_divergent > 0
        assert report.counts_by_status.get("degraded", 0) > 0

    def test_campaign_is_deterministic(self, deployed_artifact, tmp_path):
        spec = ServeFaultSpec(corrupt_rate=0.2, delay_rate=0.2,
                              kill_rate=0.1, seed=7)
        runs = [
            run_chaos_serve(deployed_artifact, queries=6_000, batch_size=256,
                            spec=spec, workdir=tmp_path / f"run{i}")
            for i in range(2)
        ]
        assert runs[0].summary_row() == runs[1].summary_row()
        assert runs[0].counts_by_status == runs[1].counts_by_status

    def test_clean_campaign_all_ok(self, deployed_artifact, tmp_path):
        report = run_chaos_serve(deployed_artifact, queries=4_000,
                                 batch_size=512, burst_every=0,
                                 spec=ServeFaultSpec(),
                                 workdir=tmp_path / "clean")
        assert report.ok
        assert report.degraded_answers == 0 and report.shed == 0
        assert report.answered_points == 4_000


_KILL_SCRIPT = """
import os, signal, sys
import numpy as np
from repro.serve import ServeEngine

artifact, journal, batches = sys.argv[1], sys.argv[2], int(sys.argv[3])
rng = np.random.default_rng(5)
engine = ServeEngine(artifact, journal_path=journal)
for _ in range(batches):
    result = engine.classify_batch(rng.random((16, 2)))
    assert result.ok, result
os.kill(os.getpid(), signal.SIGKILL)  # die mid-journal: no shutdown marker
"""


class TestSigkillWarmRestart:
    def test_sigkill_mid_journal_then_warm_restart(self, deployed_artifact,
                                                   tmp_path, rng):
        """Satellite: a real SIGKILL of the serving process mid-journal.

        The restarted engine must resume the request sequence from the
        journal and — with the primary artifact corrupted by the "crash" —
        serve digest-verified answers from the last-good copy with zero
        wrong answers.
        """
        import shutil

        workdir = tmp_path / "serve"
        workdir.mkdir()
        artifact = workdir / "model.json"
        shutil.copyfile(deployed_artifact, artifact)
        journal = workdir / "serve.journal"
        batches = 5

        proc = subprocess.run(
            [sys.executable, "-c", _KILL_SCRIPT,
             str(artifact), str(journal), str(batches)],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        meta, last_seq, answered, _ = read_serve_journal(journal)
        assert answered == batches and last_seq == batches - 1
        assert meta is not None

        # The crash also corrupted the primary deploy (worst case).
        reference = load_artifact(artifact).classifier
        artifact.write_text(artifact.read_text()[:-40])
        assert last_good_path(artifact).exists()

        engine = ServeEngine.warm_restart(artifact, journal)
        assert engine.resumed_requests == batches
        probes = rng.random((64, 2))
        result = engine.classify_batch(probes)
        assert result.ok and not result.degraded
        assert result.source == "last_good"
        assert result.request_id == batches  # sequence resumed
        # Zero wrong answers: last-good is digest-verified and identical.
        assert (result.labels == reference.classify_matrix(probes)).all()
        engine.close()

        # The journal now carries both lives of the server.
        _, last_seq2, answered2, _ = read_serve_journal(journal)
        assert answered2 == batches + 1 and last_seq2 == batches

    def test_truncated_journal_tail_survives_restart(self, deployed_artifact,
                                                     tmp_path, rng):
        """A crash mid-append leaves a half-written line; warm restart
        must tolerate it rather than refuse to start."""
        import shutil

        workdir = tmp_path / "serve"
        workdir.mkdir()
        artifact = workdir / "model.json"
        shutil.copyfile(deployed_artifact, artifact)
        journal = workdir / "serve.journal"

        engine = ServeEngine(artifact, journal_path=journal)
        engine.classify_batch(rng.random((8, 2)))
        engine.abandon()
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 1, "n": 8, "stat')  # torn write

        restarted = ServeEngine.warm_restart(artifact, journal)
        result = restarted.classify_batch(rng.random((8, 2)))
        assert result.ok
        assert result.request_id == 1
        restarted.close()

    def test_restart_journal_records_both_models(self, deployed_artifact,
                                                 tmp_path, rng):
        import shutil

        workdir = tmp_path / "serve"
        workdir.mkdir()
        artifact = workdir / "model.json"
        shutil.copyfile(deployed_artifact, artifact)
        journal = workdir / "serve.journal"

        engine = ServeEngine(artifact, journal_path=journal)
        engine.classify_batch(rng.random((4, 2)))
        digest = engine.model_digest
        engine.abandon()

        restarted = ServeEngine.warm_restart(artifact, journal)
        restarted.classify_batch(rng.random((4, 2)))
        restarted.close()

        lines = [json.loads(line) for line in
                 journal.read_text().splitlines() if line.strip()]
        installs = [entry for entry in lines if "model" in entry]
        assert len(installs) == 2
        assert all(entry["model"] == digest for entry in installs)
