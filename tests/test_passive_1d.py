"""Tests for the exact 1-D passive solver (repro.core.passive_1d)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PointSet, ThresholdClassifier, solve_passive_1d, weighted_error
from repro.core.passive_1d import NEG_INF, best_threshold, threshold_errors


def _naive_best(values, labels, weights=None):
    """Reference: evaluate every effective threshold directly."""
    values = np.asarray(values, dtype=float)
    labels = np.asarray(labels)
    weights = np.ones(len(values)) if weights is None else np.asarray(weights)
    best = None
    for tau in [NEG_INF] + sorted(set(values.tolist())):
        pred = (values > tau).astype(int)
        err = float(weights[pred != labels].sum())
        if best is None or err < best[1]:
            best = (tau, err)
    return best


class TestBestThreshold:
    def test_clean_separation(self):
        tau, err = best_threshold([1.0, 2.0, 3.0, 4.0], [0, 0, 1, 1])
        assert err == 0.0
        assert tau == 2.0

    def test_all_ones_prefers_neg_inf(self):
        tau, err = best_threshold([1.0, 2.0], [1, 1])
        assert err == 0.0
        assert tau == NEG_INF

    def test_all_zeros(self):
        tau, err = best_threshold([1.0, 2.0], [0, 0])
        assert err == 0.0
        assert tau == 2.0  # everything at or below tau -> predicted 0

    def test_single_noise_point(self):
        # 0 0 1 0 1 1: flipping position 3 (label 0 at value 4) costs 1.
        tau, err = best_threshold([1, 2, 3, 4, 5, 6], [0, 0, 1, 0, 1, 1])
        assert err == 1.0

    def test_weights_change_the_answer(self):
        values = [1.0, 2.0]
        labels = [1, 0]
        # Unweighted: any threshold errs on exactly one point.
        _tau, err = best_threshold(values, labels)
        assert err == 1.0
        # Heavy weight on the label-1 point: classifier must cover it.
        tau, err = best_threshold(values, labels, weights=[10.0, 1.0])
        assert err == 1.0
        assert tau == NEG_INF  # all-1: errs only on the light label-0 point

    def test_ties_stay_together(self):
        # Two copies of the same value with different labels: one always errs.
        _tau, err = best_threshold([1.0, 1.0], [0, 1])
        assert err == 1.0

    def test_empty(self):
        tau, err = best_threshold([], [])
        assert err == 0.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            best_threshold([1.0], [0, 1])
        with pytest.raises(ValueError):
            best_threshold([1.0], [0], weights=[1.0, 2.0])


class TestThresholdErrors:
    def test_curve_contains_all_candidates(self):
        taus, errors = threshold_errors([1.0, 2.0, 3.0], [0, 1, 1])
        assert taus[0] == NEG_INF
        assert list(taus[1:]) == [1.0, 2.0, 3.0]
        # tau=-inf: errs on the label-0 point; tau=1: clean; tau=3: errs on 2 ones.
        assert list(errors) == [1.0, 0.0, 1.0, 2.0]

    def test_min_matches_best_threshold(self, rng):
        values = rng.random(200)
        labels = (values > 0.4).astype(int)
        flips = rng.random(200) < 0.2
        labels = np.where(flips, 1 - labels, labels)
        weights = rng.random(200) + 0.1
        _taus, errors = threshold_errors(values, labels, weights)
        _tau, err = best_threshold(values, labels, weights)
        assert errors.min() == pytest.approx(err)


class TestSolvePassive1D:
    def test_returns_threshold_classifier(self):
        ps = PointSet([(1.0,), (2.0,), (3.0,)], [0, 1, 1])
        result = solve_passive_1d(ps)
        assert isinstance(result.classifier, ThresholdClassifier)
        assert result.optimal_error == 0.0
        assert weighted_error(ps, result.classifier) == 0.0

    def test_classifier_achieves_reported_error(self, rng):
        values = rng.random((300, 1))
        labels = (values[:, 0] > 0.5).astype(int)
        flips = rng.random(300) < 0.25
        labels = np.where(flips, 1 - labels, labels)
        weights = rng.random(300) + 0.5
        ps = PointSet(values, labels, weights)
        result = solve_passive_1d(ps)
        assert weighted_error(ps, result.classifier) == pytest.approx(result.optimal_error)

    def test_requires_1d(self, tiny_2d):
        with pytest.raises(ValueError):
            solve_passive_1d(tiny_2d)

    def test_requires_labels(self):
        ps = PointSet([(1.0,)], [0]).with_hidden_labels()
        with pytest.raises(ValueError):
            solve_passive_1d(ps)


@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 1),
                          st.floats(0.1, 5.0)),
                min_size=1, max_size=25))
def test_matches_naive_enumeration(rows):
    """Property: the prefix-sum solver equals brute-force threshold search."""
    values = [float(v) for v, _l, _w in rows]
    labels = [l for _v, l, _w in rows]
    weights = [w for _v, _l, w in rows]
    tau, err = best_threshold(values, labels, weights)
    naive_tau, naive_err = _naive_best(values, labels, weights)
    assert err == pytest.approx(naive_err)
    # The solver must achieve its reported error (tie-broken tau may differ).
    pred = (np.asarray(values) > tau).astype(int)
    achieved = float(np.asarray(weights)[pred != np.asarray(labels)].sum())
    assert achieved == pytest.approx(err)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 1)),
                min_size=1, max_size=20))
def test_agrees_with_isotonic_baseline(rows):
    """Property: PAVA@1/2 achieves the same optimal unweighted error."""
    from repro.baselines.isotonic import isotonic_threshold_classifier

    ps = PointSet([(float(v),) for v, _l in rows], [l for _v, l in rows])
    exact = solve_passive_1d(ps).optimal_error
    iso = isotonic_threshold_classifier(ps)
    assert weighted_error(ps, iso) == pytest.approx(exact)
