"""Tests for the array-native flow engines (repro.flow.array).

Covers the CSR snapshot contract, bit-identity of ``dinic_array`` with
the loop engine, the six-backend solver-equivalence suite (random and
epsilon-boundary instances plus the replayable corpus), and the
``solve_passive`` auto-upgrade above ``FLOW_ARRAY_CUTOFF``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.passive import solve_passive
from repro.experiments.flow_backends import random_flow_network
from repro.flow import (
    ARRAY_UPGRADES,
    FLOW_BACKENDS,
    RESIDUAL_EPS,
    CSRFlowSnapshot,
    FlowNetwork,
    array_backend_for,
    dinic_array_max_flow,
    dinic_max_flow,
    push_relabel_array_max_flow,
    solve_max_flow,
    solve_min_cut,
)
from repro.fuzz.corpus import iter_corpus, load_reproducer
from repro.obs import metrics_session
from tests.strategies import boundary_flow_networks, flow_networks

CORPUS_DIR = "tests/corpus"


def _clone(network: FlowNetwork) -> FlowNetwork:
    """Fresh zero-flow network with identical topology and capacities."""
    other = FlowNetwork(network.num_nodes)
    for _arc_id, arc in network.forward_arcs():
        other.add_edge(arc.tail, arc.head, arc.capacity)
    return other


class TestCSRFlowSnapshot:
    def test_indptr_matches_adjacency(self):
        net = random_flow_network(12, 0.3, seed=0)
        snap = CSRFlowSnapshot(net)
        assert snap.indptr[0] == 0
        assert snap.indptr[-1] == snap.num_arcs == len(net.heads)
        for u in range(net.num_nodes):
            sl = snap.csr_arcs[snap.indptr[u]:snap.indptr[u + 1]]
            assert sl.tolist() == net.adjacency[u]

    def test_position_mirrors_consistent(self):
        net = random_flow_network(10, 0.4, seed=1)
        snap = CSRFlowSnapshot(net)
        assert snap.csr_heads.tolist() == [net.heads[a] for a in snap.csr_arcs]
        assert snap.csr_tails.tolist() == [net.tail(a) for a in snap.csr_arcs]

    def test_reverse_arc_pairing_preserved(self):
        net = random_flow_network(10, 0.4, seed=2)
        snap = CSRFlowSnapshot(net)
        arcs = np.arange(snap.num_arcs, dtype=np.int64)
        # arc ^ 1 still addresses the paired reverse arc on the arrays:
        # each pair's heads are swapped tails and capacities of reverse
        # arcs are zero.
        assert (snap.caps[arcs[1::2]] == 0.0).all()
        for a in range(0, snap.num_arcs, 2):
            assert snap.arc_heads[a ^ 1] == net.tail(a)

    def test_writeback_round_trip(self):
        net = FlowNetwork(2)
        arc = net.add_edge(0, 1, 4.0)
        snap = CSRFlowSnapshot(net)
        snap.flows[arc] += 2.5
        snap.flows[arc ^ 1] -= 2.5
        snap.writeback(net)
        assert net.flows[arc] == 2.5
        assert net.residual(arc) == 1.5
        assert net.residual(arc ^ 1) == 2.5

    def test_empty_network(self):
        net = FlowNetwork(3)
        snap = CSRFlowSnapshot(net)
        assert snap.num_arcs == 0
        assert snap.indptr.tolist() == [0, 0, 0, 0]
        assert dinic_array_max_flow(net, 0, 2) == 0.0


class TestDinicArrayBitIdentity:
    """dinic_array replays the loop engine's float operations exactly."""

    @settings(max_examples=60, deadline=None)
    @given(flow_networks())
    def test_value_and_flows_bit_identical(self, case):
        network, source, sink = case
        loop_net, array_net = _clone(network), _clone(network)
        loop_value = dinic_max_flow(loop_net, source, sink)
        array_value = dinic_array_max_flow(array_net, source, sink)
        assert array_value == loop_value  # exact, no tolerance
        assert array_net.flows == loop_net.flows

    @settings(max_examples=25, deadline=None)
    @given(boundary_flow_networks())
    def test_bit_identical_at_epsilon_boundary(self, case):
        network, source, sink = case
        loop_net, array_net = _clone(network), _clone(network)
        assert dinic_array_max_flow(array_net, source, sink) == \
            dinic_max_flow(loop_net, source, sink)
        assert array_net.flows == loop_net.flows

    def test_bit_identical_on_larger_random_networks(self):
        for seed in range(20):
            net = random_flow_network(60, 0.15, seed=seed)
            loop_net, array_net = _clone(net), _clone(net)
            assert dinic_array_max_flow(array_net, 0, 59) == \
                dinic_max_flow(loop_net, 0, 59)
            assert array_net.flows == loop_net.flows


class TestPushRelabelArray:
    def test_agrees_and_is_feasible(self):
        for seed in range(15):
            net = random_flow_network(40, 0.2, seed=seed)
            expected = dinic_max_flow(_clone(net), 0, 39)
            value = push_relabel_array_max_flow(net, 0, 39)
            assert value == pytest.approx(expected, rel=1e-9, abs=1e-9)
            assert net.check_flow_conservation(0, 39)

    def test_global_relabel_counter_recorded(self):
        net = random_flow_network(30, 0.2, seed=7)
        with metrics_session() as reg:
            push_relabel_array_max_flow(net, 0, 29)
        counters = reg.counters
        assert counters["flow.push_relabel_array.calls"].value == 1
        # The initial sweep after source saturation always runs.
        assert counters["flow.push_relabel_array.global_relabels"].value >= 1
        assert counters["flow.array.snapshots"].value == 1

    def test_warm_start_sub_epsilon_residual_skipped(self):
        """Same regression as the loop engine (shared push guard)."""
        tiny = RESIDUAL_EPS / 2
        net = FlowNetwork(3)
        a = net.add_edge(0, 1, 1.0)
        b = net.add_edge(1, 2, 1.0)
        net.push(a, 1.0 - tiny)
        net.push(b, 1.0 - tiny)
        with metrics_session() as reg:
            value = push_relabel_array_max_flow(net, 0, 2)
        assert value == 1.0 - tiny
        assert reg.counters["flow.push_relabel_array.pushes"].value == 0
        assert net.check_flow_conservation(0, 2, tol=0.0)


class TestSolverEquivalence:
    """All six registered backends agree on value, feasibility and cuts."""

    @settings(max_examples=40, deadline=None)
    @given(flow_networks())
    def test_all_backends_equivalent(self, case):
        network, source, sink = case
        values = {}
        for backend in sorted(FLOW_BACKENDS):
            net = _clone(network)
            values[backend] = solve_max_flow(net, source, sink,
                                             backend=backend)
            assert net.check_flow_conservation(source, sink)
        reference = values["dinic"]
        for backend, value in values.items():
            assert value == pytest.approx(reference, rel=1e-9, abs=1e-9), \
                backend

    # Augmenting-path backends move per-path bottlenecks, so their values
    # are sums of identical > RESIDUAL_EPS augmentations and must agree
    # below the tolerance itself.  The preflow backends aggregate excess
    # per node and may legitimately deliver up to ~RESIDUAL_EPS more per
    # saturating arc than a bottleneck-at-a-time search admits, so their
    # slack scales with the instance.
    PATH_BACKENDS = ("capacity_scaling", "dinic", "dinic_array",
                     "edmonds_karp")

    @settings(max_examples=40, deadline=None)
    @given(boundary_flow_networks())
    def test_boundary_capacities_differential(self, case):
        """Epsilon-boundary differential (satellite of the scaling fix).

        The path-backend tolerance is *below* ``RESIDUAL_EPS``: the
        historical bug was a disagreement of exactly 1e-12, invisible to
        the usual 1e-9 slack.
        """
        network, source, sink = case
        values = {}
        for backend in sorted(FLOW_BACKENDS):
            net = _clone(network)
            values[backend] = solve_max_flow(net, source, sink,
                                             backend=backend)
            assert net.check_flow_conservation(source, sink)
        reference = values["dinic"]
        for backend in self.PATH_BACKENDS:
            assert values[backend] == pytest.approx(
                reference, rel=1e-9, abs=RESIDUAL_EPS / 2), backend
        loose = (network.num_edges + 2) * RESIDUAL_EPS
        for backend, value in values.items():
            assert value == pytest.approx(reference, rel=1e-9,
                                          abs=loose), backend

    @settings(max_examples=25, deadline=None)
    @given(flow_networks())
    def test_cut_certificates_equivalent(self, case):
        network, source, sink = case
        weights = {}
        for backend in sorted(FLOW_BACKENDS):
            net = _clone(network)
            cut = solve_min_cut(net, source, sink, backend=backend,
                                check=False)
            weights[backend] = cut.weight(net)
            assert cut.weight(net) == pytest.approx(cut.value,
                                                    rel=1e-9, abs=1e-9)
            for arc_id in cut.cut_arcs:
                assert net.caps[arc_id] > 0.0
        reference = weights["dinic"]
        for backend, weight in weights.items():
            assert weight == pytest.approx(reference, rel=1e-9,
                                           abs=1e-9), backend

    def test_corpus_replay_machine_precision(self):
        """Every corpus entry solves identically across all six backends.

        The array engines must match to machine precision: ``dinic_array``
        exactly, ``push_relabel_array`` within float tolerance.
        """
        paths = list(iter_corpus(CORPUS_DIR))
        assert paths, "replay corpus is empty"
        solved_one = False
        for path in paths:
            points, _meta = load_reproducer(path)
            results = {}
            rejected = {}
            for backend in sorted(FLOW_BACKENDS):
                try:
                    results[backend] = solve_passive(points, backend=backend)
                except ValueError as exc:
                    rejected[backend] = str(exc)
            if rejected:
                # Input validation happens before any backend runs, so a
                # rejected instance must be rejected for every backend.
                assert not results, (path.name, sorted(results))
                continue
            solved_one = True
            reference = results["dinic"]
            assert results["dinic_array"].optimal_error == \
                reference.optimal_error, path.name
            for backend, result in results.items():
                assert result.optimal_error == pytest.approx(
                    reference.optimal_error, rel=1e-9, abs=1e-12), \
                    (path.name, backend)
        assert solved_one, "every corpus entry was rejected"


class TestArrayMinCutExtraction:
    """The CSR fast path of min_cut_from_residual matches the scalar path."""

    def test_identical_to_scalar_path(self, monkeypatch):
        from repro.flow.mincut import (
            _min_cut_from_residual_array,
            min_cut_from_residual,
        )

        for seed in range(10):
            net = random_flow_network(25, 0.25, seed=seed)
            value = dinic_max_flow(net, 0, 24)
            scalar = min_cut_from_residual(net, 0, 24, value)
            fast = _min_cut_from_residual_array(net, 0, 24, value)
            assert fast.source_side == scalar.source_side
            assert fast.cut_arcs == scalar.cut_arcs
            assert fast.value == scalar.value

    def test_rejects_non_max_flow(self):
        from repro.flow.mincut import _min_cut_from_residual_array

        net = random_flow_network(10, 0.5, seed=3)  # zero flow
        with pytest.raises(AssertionError):
            _min_cut_from_residual_array(net, 0, 9, 0.0)


class TestAutoUpgrade:
    def test_array_backend_for_mapping(self):
        assert array_backend_for("dinic") == "dinic_array"
        assert array_backend_for("push_relabel") == "push_relabel_array"
        assert array_backend_for("edmonds_karp") is None
        assert array_backend_for("dinic_array") is None
        assert set(ARRAY_UPGRADES.values()) <= set(FLOW_BACKENDS)

    def _points(self):
        rng = np.random.default_rng(11)
        from repro import PointSet

        coords = rng.random((40, 2))
        labels = (coords.sum(axis=1) + rng.normal(0, 0.3, 40) > 1.0)
        return PointSet(coords, labels.astype(int).tolist())

    def test_upgrade_above_cutoff(self, monkeypatch):
        points = self._points()
        baseline = solve_passive(points, backend="dinic")
        assert baseline.backend == "dinic"
        monkeypatch.setattr("repro.core.passive.FLOW_ARRAY_CUTOFF", 2)
        with metrics_session() as reg:
            upgraded = solve_passive(points, backend="dinic")
        assert upgraded.backend == "dinic_array"
        assert reg.counters["passive.array_backend_upgrades"].value == 1
        # Bit-identical engine: identical error, flow value and labels.
        assert upgraded.optimal_error == baseline.optimal_error
        assert upgraded.flow_value == baseline.flow_value
        assert (upgraded.assignment == baseline.assignment).all()

    def test_no_upgrade_for_non_loop_backends(self, monkeypatch):
        points = self._points()
        monkeypatch.setattr("repro.core.passive.FLOW_ARRAY_CUTOFF", 2)
        result = solve_passive(points, backend="edmonds_karp")
        assert result.backend == "edmonds_karp"

    def test_explicit_array_backend_accepted(self):
        points = self._points()
        direct = solve_passive(points, backend="push_relabel_array")
        assert direct.backend == "push_relabel_array"
        reference = solve_passive(points, backend="dinic")
        assert direct.optimal_error == pytest.approx(
            reference.optimal_error, rel=1e-9, abs=1e-12)
