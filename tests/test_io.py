"""Tests for point-set serialization (repro.io)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PointSet
from repro.datasets.figures import figure1_weighted_point_set
from repro.io import load_csv, load_json, save_csv, save_json


@pytest.fixture
def sample() -> PointSet:
    return PointSet(
        [(0.25, 1.0), (2.0, 3.5), (1.0, 1.0)],
        [0, 1, -1],
        [1.0, 2.5, 0.125],
    )


class TestCSV:
    def test_round_trip(self, sample, tmp_path):
        path = tmp_path / "points.csv"
        save_csv(sample, path)
        loaded = load_csv(path)
        assert (loaded.coords == sample.coords).all()
        assert (loaded.labels == sample.labels).all()
        assert (loaded.weights == sample.weights).all()

    def test_round_trip_preserves_exact_floats(self, tmp_path):
        values = np.array([[0.1 + 0.2], [1e-17 + 1.0]])
        ps = PointSet(values, [0, 1])
        path = tmp_path / "exact.csv"
        save_csv(ps, path)
        assert (load_csv(path).coords == values).all()

    def test_header_validation(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_field_count_validation(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("x0,label,weight\n1.0,0\n")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_empty_body(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("x0,x1,label,weight\n")
        loaded = load_csv(path)
        assert loaded.n == 0
        assert loaded.dim == 2


class TestJSON:
    def test_round_trip(self, sample, tmp_path):
        path = tmp_path / "points.json"
        save_json(sample, path)
        loaded = load_json(path)
        assert (loaded.coords == sample.coords).all()
        assert (loaded.labels == sample.labels).all()
        assert (loaded.weights == sample.weights).all()

    def test_names_preserved(self, tmp_path):
        ps = figure1_weighted_point_set()
        path = tmp_path / "fig1.json"
        save_json(ps, path)
        loaded = load_json(path)
        assert loaded.names == ps.names

    def test_missing_key_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"dim": 1, "coords": [[0.0]]}')
        with pytest.raises(ValueError):
            load_json(path)

    def test_empty_set(self, tmp_path):
        ps = PointSet(np.empty((0, 3)), [], [])
        path = tmp_path / "empty.json"
        save_json(ps, path)
        loaded = load_json(path)
        assert loaded.n == 0
        assert loaded.dim == 3


class TestValidationBoundary:
    """Hostile bytes must surface as ValueError naming the file — never
    TypeError/KeyError/IndexError tracebacks (the repro.fuzz IO fuzzer
    hammers exactly this contract)."""

    def test_csv_empty_file(self, tmp_path):
        path = tmp_path / "zero.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_csv(path)

    def test_csv_non_numeric_cell_names_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x0,label,weight\n1.0,0,1.0\nfoo,1,1.0\n")
        with pytest.raises(ValueError, match=r"bad\.csv:3"):
            load_csv(path)

    def test_csv_nonfinite_coord_rejected(self, tmp_path):
        path = tmp_path / "nan.csv"
        path.write_text("x0,label,weight\nnan,0,1.0\n")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_json_not_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_bytes(b"\x00\xffnot json")
        with pytest.raises(ValueError, match="garbage"):
            load_json(path)

    def test_json_not_an_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_json(path)

    @pytest.mark.parametrize("dim", ['"2"', "true", "-1", "0"])
    def test_json_bad_dim(self, tmp_path, dim):
        path = tmp_path / "dim.json"
        path.write_text('{"dim": %s, "coords": [], "labels": [], '
                        '"weights": []}' % dim)
        with pytest.raises(ValueError):
            load_json(path)

    def test_json_ragged_coords(self, tmp_path):
        path = tmp_path / "ragged.json"
        path.write_text('{"dim": 2, "coords": [[0.0, 1.0], [2.0]], '
                        '"labels": [0, 1], "weights": [1.0, 1.0]}')
        with pytest.raises(ValueError):
            load_json(path)

    def test_json_length_mismatch(self, tmp_path):
        path = tmp_path / "short.json"
        path.write_text('{"dim": 1, "coords": [[0.0], [1.0]], '
                        '"labels": [0], "weights": [1.0, 1.0]}')
        with pytest.raises(ValueError):
            load_json(path)

    def test_json_nonfinite_coord_rejected(self, tmp_path):
        path = tmp_path / "inf.json"
        path.write_text('{"dim": 1, "coords": [[Infinity]], '
                        '"labels": [0], "weights": [1.0]}')
        with pytest.raises(ValueError):
            load_json(path)


class TestCrossFormat:
    def test_csv_and_json_agree(self, sample, tmp_path):
        csv_path = tmp_path / "p.csv"
        json_path = tmp_path / "p.json"
        save_csv(sample, csv_path)
        save_json(sample, json_path)
        a, b = load_csv(csv_path), load_json(json_path)
        assert (a.coords == b.coords).all()
        assert (a.labels == b.labels).all()
        assert (a.weights == b.weights).all()
