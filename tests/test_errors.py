"""Tests for error functionals (repro.core.errors)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConstantClassifier, PointSet, ThresholdClassifier
from repro.core.errors import (
    error_count,
    misclassified_mask,
    prediction_error_count,
    prediction_weighted_error,
    weighted_error,
)


class TestErrorCount:
    def test_constant_classifier_errors(self, tiny_2d):
        # Labels [1, 0, 0, 1]: all-0 errs on the two 1s, all-1 on the two 0s.
        assert error_count(tiny_2d, ConstantClassifier(0)) == 2
        assert error_count(tiny_2d, ConstantClassifier(1)) == 2

    def test_with_prediction_vector(self, tiny_2d):
        assert error_count(tiny_2d, [1, 0, 0, 1]) == 0
        assert error_count(tiny_2d, [0, 1, 1, 0]) == 4

    def test_requires_full_labels(self, tiny_2d):
        with pytest.raises(ValueError):
            error_count(tiny_2d.with_hidden_labels(), ConstantClassifier(0))

    def test_wrong_prediction_length(self, tiny_2d):
        with pytest.raises(ValueError):
            error_count(tiny_2d, [0, 1])

    def test_mask_identifies_points(self, tiny_2d):
        mask = misclassified_mask(tiny_2d, ConstantClassifier(0))
        assert list(mask) == [True, False, False, True]


class TestWeightedError:
    def test_weights_are_summed(self):
        ps = PointSet([(0.0,), (1.0,), (2.0,)], [1, 0, 1], [10.0, 2.0, 5.0])
        # all-0 misses the two label-1 points.
        assert weighted_error(ps, ConstantClassifier(0)) == 15.0
        assert weighted_error(ps, ConstantClassifier(1)) == 2.0

    def test_unit_weights_match_count(self, tiny_2d):
        h = ThresholdClassifier(1.0)
        assert weighted_error(tiny_2d, h) == error_count(tiny_2d, h)

    def test_paper_example_weighted_error(self):
        """Section 1.1: the unweighted-optimal h has w-err = 220 on Fig 1(b)."""
        from repro.datasets.figures import figure1_weighted_point_set

        ps = figure1_weighted_point_set()
        # h misclassifies exactly p1 (w=100), p11 (60), p15 (60).
        predictions = ps.labels.copy()
        for name in ("p1", "p11", "p15"):
            idx = int(name[1:]) - 1
            predictions[idx] = 1 - predictions[idx]
        assert weighted_error(ps, predictions) == 220.0


class TestRawPredictionErrors:
    def test_hidden_labels_ignored(self):
        labels = np.array([1, -1, 0], dtype=np.int8)
        predictions = np.array([0, 1, 0], dtype=np.int8)
        assert prediction_error_count(labels, predictions) == 1

    def test_weighted_variant(self):
        labels = np.array([1, -1, 0], dtype=np.int8)
        predictions = np.array([0, 1, 1], dtype=np.int8)
        weights = np.array([2.0, 100.0, 3.0])
        assert prediction_weighted_error(labels, predictions, weights) == 5.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 1, allow_nan=False),
                          st.integers(0, 1)),
                min_size=1, max_size=30),
       st.floats(-0.5, 1.5))
def test_error_decomposes_over_partition(rows, tau):
    """Property: err_P = err_P' + err_{P \\ P'} for any split (paper eq. 21)."""
    values = [(v,) for v, _label in rows]
    labels = [label for _v, label in rows]
    ps = PointSet(values, labels)
    h = ThresholdClassifier(tau)
    half = len(rows) // 2
    left = ps.subset(range(half))
    right = ps.subset(range(half, len(rows)))
    total = error_count(ps, h)
    split = (error_count(left, h) if left.n else 0) + \
        (error_count(right, h) if right.n else 0)
    assert total == split


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 1, allow_nan=False), st.integers(0, 1),
                          st.floats(0.1, 5.0)),
                min_size=1, max_size=25))
def test_all0_all1_weighted_errors_sum_to_total_weight(rows):
    """Property: w-err(all-0) + w-err(all-1) = total weight."""
    ps = PointSet([(v,) for v, _l, _w in rows],
                  [l for _v, l, _w in rows],
                  [w for _v, _l, w in rows])
    total = weighted_error(ps, ConstantClassifier(0)) + \
        weighted_error(ps, ConstantClassifier(1))
    assert total == pytest.approx(ps.total_weight)
