"""Tests verifying the Figure 1 reconstruction (repro.datasets.figures).

Every assertion here is a number or structure the paper states explicitly;
collectively they certify that the reconstructed coordinates are a faithful
executable version of the running example.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    dominance_width,
    error_count,
    solve_passive,
    weighted_error,
)
from repro.core.passive import contending_mask
from repro.datasets.figures import (
    FIGURE1_ANTICHAIN,
    FIGURE1_CHAINS,
    FIGURE1_CONTENDING,
    FIGURE1_OPTIMAL_UNWEIGHTED_ERROR,
    FIGURE1_OPTIMAL_WEIGHTED_ERROR,
    FIGURE1_WIDTH,
    figure1_point_set,
    figure1_weighted_point_set,
)
from repro.poset.chains import ChainDecomposition, is_valid_chain_decomposition
from repro.poset.width import is_antichain


@pytest.fixture(scope="module")
def points():
    return figure1_point_set()


@pytest.fixture(scope="module")
def weighted():
    return figure1_weighted_point_set()


def _idx(name: str) -> int:
    return int(name[1:]) - 1


class TestStructure:
    def test_sixteen_named_2d_points(self, points):
        assert points.n == 16
        assert points.dim == 2
        assert points.names == tuple(f"p{i}" for i in range(1, 17))

    def test_label_split(self, points):
        blacks = {f"p{i + 1}" for i in np.flatnonzero(points.labels == 1)}
        assert blacks == {"p1", "p4", "p9", "p10", "p12", "p13", "p14", "p16"}

    def test_width_is_six(self, points):
        assert dominance_width(points) == FIGURE1_WIDTH

    def test_papers_antichain_is_valid(self, points):
        indices = [_idx(name) for name in FIGURE1_ANTICHAIN]
        assert is_antichain(points, indices)
        assert len(indices) == FIGURE1_WIDTH

    def test_papers_chain_decomposition_is_valid(self, points):
        decomposition = ChainDecomposition(
            [[_idx(name) for name in chain] for chain in FIGURE1_CHAINS],
            points.n, method="paper")
        assert is_valid_chain_decomposition(points, decomposition)
        assert decomposition.num_chains == FIGURE1_WIDTH

    def test_contending_sets_match_figure_2a(self, points):
        mask = contending_mask(points)
        for label in (0, 1):
            got = sorted(f"p{i + 1}"
                         for i in np.flatnonzero(mask & (points.labels == label)))
            assert got == sorted(FIGURE1_CONTENDING[label])


class TestAnswers:
    def test_unweighted_optimum_is_three(self, points):
        assert solve_passive(points).optimal_error == \
            FIGURE1_OPTIMAL_UNWEIGHTED_ERROR

    def test_papers_unweighted_classifier_achieves_three(self, points):
        """The h of Section 1.1: blacks except p1 -> 1, plus p11 and p15."""
        predictions = points.labels.copy()
        for name in ("p1", "p11", "p15"):
            predictions[_idx(name)] = 1 - predictions[_idx(name)]
        assert error_count(points, predictions) == 3
        from repro import is_monotone_assignment

        assert is_monotone_assignment(points, predictions)

    def test_weighted_optimum_is_104(self, weighted):
        result = solve_passive(weighted)
        assert result.optimal_error == FIGURE1_OPTIMAL_WEIGHTED_ERROR
        assert result.flow_value == pytest.approx(104.0)

    def test_weighted_optimal_assignment(self, weighted):
        """The paper's h': maps p10, p12, p16 to 1 and everything else to 0."""
        result = solve_passive(weighted)
        ones = {f"p{i + 1}" for i in np.flatnonzero(result.assignment == 1)}
        assert ones == {"p10", "p12", "p16"}

    def test_papers_unweighted_h_is_bad_on_weights(self, weighted):
        """Section 1.1: the unweighted-optimal h has w-err 220 on Fig 1(b)."""
        predictions = weighted.labels.copy()
        for name in ("p1", "p11", "p15"):
            predictions[_idx(name)] = 1 - predictions[_idx(name)]
        assert weighted_error(weighted, predictions) == 220.0

    def test_min_cut_contains_all_five_sink_edges(self, weighted):
        """Section 5.1: the optimal cut is exactly the five type-2 edges."""
        result = solve_passive(weighted)
        flipped_to_zero = {
            f"p{i + 1}"
            for i in np.flatnonzero((weighted.labels == 1) & (result.assignment == 0))
        }
        assert flipped_to_zero == {"p1", "p4", "p9", "p13", "p14"}
        # Their weight sum is the 104 of the example.
        total = sum(weighted.weights[_idx(name)] for name in flipped_to_zero)
        assert total == 104.0

    def test_weights_match_figure_1b(self, weighted):
        assert weighted.weights[_idx("p1")] == 100.0
        assert weighted.weights[_idx("p11")] == 60.0
        assert weighted.weights[_idx("p15")] == 60.0
        others = [i for i in range(16)
                  if i not in {_idx("p1"), _idx("p11"), _idx("p15")}]
        assert (weighted.weights[others] == 1.0).all()
