"""Tests for the Appendix A Chernoff forms (repro.stats.chernoff)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.chernoff import (
    chernoff_two_sided_bound,
    chernoff_upper_tail_bound,
    lemma5_case_sample_size,
    two_sided_sample_size,
    upper_tail_sample_size,
)
from repro.stats.estimation import lemma5_sample_size


class TestBoundValues:
    def test_two_sided_formula(self):
        # 2 exp(-gamma^2 t mu / 3)
        assert chernoff_two_sided_bound(0.5, 100, 0.3) == \
            pytest.approx(min(1.0, 2 * np.exp(-0.25 * 100 * 0.3 / 3)))

    def test_upper_tail_formula(self):
        assert chernoff_upper_tail_bound(1.0, 50, 0.2) == \
            pytest.approx(np.exp(-1.0 * 50 * 0.2 / 3.0))

    def test_bounds_capped_at_one(self):
        assert chernoff_two_sided_bound(0.01, 1, 0.01) == 1.0
        assert chernoff_upper_tail_bound(0.0, 10, 0.5) == 1.0

    def test_two_sided_validation(self):
        with pytest.raises(ValueError):
            chernoff_two_sided_bound(0.0, 10, 0.5)
        with pytest.raises(ValueError):
            chernoff_two_sided_bound(1.5, 10, 0.5)
        with pytest.raises(ValueError):
            chernoff_two_sided_bound(0.5, 0, 0.5)
        with pytest.raises(ValueError):
            chernoff_two_sided_bound(0.5, 10, 1.5)

    def test_upper_tail_validation(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail_bound(-0.1, 10, 0.5)

    def test_monotone_in_t(self):
        b1 = chernoff_two_sided_bound(0.5, 100, 0.3)
        b2 = chernoff_two_sided_bound(0.5, 200, 0.3)
        assert b2 < b1


class TestSampleSizes:
    def test_case1_achieves_delta(self):
        phi, delta, mu = 0.05, 0.1, 0.4
        t = two_sided_sample_size(phi, delta, mu)
        assert chernoff_two_sided_bound(phi / mu, t, mu) <= delta + 1e-12

    def test_case2_achieves_delta(self):
        phi, delta, mu = 0.2, 0.1, 0.05
        t = upper_tail_sample_size(phi, delta, mu)
        assert chernoff_upper_tail_bound(phi / mu, t, mu) <= delta + 1e-12

    def test_case_split_validation(self):
        with pytest.raises(ValueError):
            two_sided_sample_size(0.5, 0.1, 0.2)  # mu < phi
        with pytest.raises(ValueError):
            upper_tail_sample_size(0.1, 0.1, 0.2)  # mu >= phi

    def test_lemma5_dominates_both_cases(self):
        """The distribution-free Lemma 5 size covers either case."""
        for mu in (0.02, 0.1, 0.5, 0.9):
            for phi in (0.05, 0.1, 0.3):
                for delta in (0.01, 0.2):
                    case = lemma5_case_sample_size(phi, delta, mu)
                    blanket = lemma5_sample_size(phi, delta)
                    assert case <= blanket

    def test_zero_mu(self):
        assert lemma5_case_sample_size(0.1, 0.1, 0.0) == 1


class TestEmpiricalValidity:
    @pytest.mark.parametrize("mu,phi", [(0.4, 0.08), (0.04, 0.12)])
    def test_monte_carlo_deviation_rate(self, mu, phi):
        """Both sample-size formulas really hit their failure targets."""
        delta = 0.2
        t = lemma5_case_sample_size(phi, delta, mu)
        gen = np.random.default_rng(0)
        trials = 400
        failures = 0
        for _ in range(trials):
            mean = (gen.random(t) < mu).mean()
            if abs(mean - mu) >= phi:
                failures += 1
        assert failures / trials <= delta
