"""Tests for budgeted active classification (repro.core.budgeted)."""

from __future__ import annotations

import pytest

from repro import LabelOracle, error_count, solve_passive
from repro.core.budgeted import (
    BudgetedResult,
    active_classify_budgeted,
    choose_epsilon_for_budget,
)
from repro.datasets.synthetic import width_controlled
from repro.experiments._common import chainwise_optimum


class TestChooseEpsilon:
    def test_large_budget_gets_tight_epsilon(self):
        assert choose_epsilon_for_budget(100_000, 4, 90_000) <= 0.5

    def test_small_budget_gets_loose_epsilon_or_none(self):
        epsilon = choose_epsilon_for_budget(100_000, 32, 500)
        assert epsilon is None or epsilon >= 0.7

    def test_monotone_in_budget(self):
        epsilons = [choose_epsilon_for_budget(50_000, 8, b)
                    for b in (2_000, 10_000, 40_000)]
        usable = [e for e in epsilons if e is not None]
        assert usable == sorted(usable, reverse=True)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            choose_epsilon_for_budget(100, 2, 0)


class TestBudgetedRun:
    def test_budget_covering_n_is_exact(self):
        points = width_controlled(500, 4, noise=0.1, rng=0)
        oracle = LabelOracle(points)
        result = active_classify_budgeted(points.with_hidden_labels(), oracle,
                                          budget=500, rng=1)
        assert result.mode == "exact"
        assert result.probing_cost == 500
        assert error_count(points, result.classifier) == \
            solve_passive(points).optimal_error

    def test_moderate_budget_never_exceeded(self):
        points = width_controlled(20_000, 4, noise=0.05, rng=2)
        oracle = LabelOracle(points)
        budget = 8_000
        result = active_classify_budgeted(points.with_hidden_labels(), oracle,
                                          budget=budget, rng=3)
        assert result.probing_cost <= budget
        assert oracle.cost <= budget
        assert result.mode in ("theorem2", "theorem2-truncated", "uniform")
        # With a workable budget the answer should be decent.
        optimum = chainwise_optimum(points)
        assert error_count(points, result.classifier) <= 3 * optimum + 50

    def test_tiny_budget_uniform_mode(self):
        points = width_controlled(20_000, 32, noise=0.05, rng=4)
        oracle = LabelOracle(points)
        result = active_classify_budgeted(points.with_hidden_labels(), oracle,
                                          budget=40, rng=5)
        assert result.probing_cost <= 40
        assert result.mode in ("uniform", "theorem2-truncated")

    def test_respects_preexisting_oracle_budget(self):
        points = width_controlled(1_000, 4, noise=0.1, rng=6)
        oracle = LabelOracle(points, budget=100)
        with pytest.raises(ValueError):
            active_classify_budgeted(points.with_hidden_labels(), oracle,
                                     budget=500, rng=7)

    def test_validation(self):
        points = width_controlled(100, 2, noise=0.1, rng=8)
        oracle = LabelOracle(points)
        with pytest.raises(ValueError):
            active_classify_budgeted(points.with_hidden_labels(), oracle,
                                     budget=0)

    def test_result_records_mode_and_epsilon(self):
        points = width_controlled(10_000, 2, noise=0.05, rng=9)
        oracle = LabelOracle(points)
        result = active_classify_budgeted(points.with_hidden_labels(), oracle,
                                          budget=6_000, rng=10)
        assert isinstance(result, BudgetedResult)
        assert result.budget == 6_000
        if result.mode.startswith("theorem2"):
            assert result.epsilon is not None
