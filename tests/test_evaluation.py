"""Tests for generalization evaluation (repro.evaluation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConstantClassifier, PointSet
from repro.datasets.entity_matching import generate_entity_matching
from repro.datasets.synthetic import planted_monotone
from repro.evaluation import (
    classification_metrics,
    confusion_matrix,
    cross_validate,
    holdout_evaluation,
    train_test_split,
)


class TestTrainTestSplit:
    def test_partitions_all_points(self):
        ps = planted_monotone(100, 2, noise=0.1, rng=0)
        train, test = train_test_split(ps, 0.3, rng=1)
        assert train.n + test.n == 100
        assert test.n == 30

    def test_deterministic_given_seed(self):
        ps = planted_monotone(50, 2, rng=0)
        a_train, _a_test = train_test_split(ps, 0.2, rng=7)
        b_train, _b_test = train_test_split(ps, 0.2, rng=7)
        assert (a_train.coords == b_train.coords).all()

    def test_validation(self):
        ps = planted_monotone(10, 2, rng=0)
        with pytest.raises(ValueError):
            train_test_split(ps, 0.0)
        with pytest.raises(ValueError):
            train_test_split(ps, 1.0)
        with pytest.raises(ValueError):
            train_test_split(PointSet([(0.0,)], [0]), 0.5)

    def test_each_side_nonempty_even_for_extreme_fraction(self):
        ps = planted_monotone(4, 2, rng=0)
        train, test = train_test_split(ps, 0.01, rng=2)
        assert train.n >= 1 and test.n >= 1


class TestMetrics:
    def test_confusion_matrix_counts(self):
        ps = PointSet([(0.0,), (1.0,), (2.0,), (3.0,)], [0, 0, 1, 1])
        counts = confusion_matrix(ps, ConstantClassifier(1))
        assert counts == {"tp": 2, "fp": 2, "fn": 0, "tn": 0}

    def test_perfect_classifier_metrics(self):
        from repro import ThresholdClassifier

        ps = PointSet([(0.0,), (1.0,), (2.0,)], [0, 1, 1])
        metrics = classification_metrics(ps, ThresholdClassifier(0.5))
        assert metrics["accuracy"] == 1.0
        assert metrics["f1"] == 1.0
        assert metrics["error_count"] == 0

    def test_degenerate_denominators(self):
        ps = PointSet([(0.0,), (1.0,)], [0, 0])
        metrics = classification_metrics(ps, ConstantClassifier(0))
        assert metrics["precision"] == 0.0  # no predicted positives
        assert metrics["recall"] == 0.0  # no actual positives
        assert metrics["f1"] == 0.0
        assert metrics["accuracy"] == 1.0


class TestHoldout:
    def test_monotone_workload_generalizes(self):
        ps = planted_monotone(600, 2, noise=0.05, rng=3)
        report = holdout_evaluation(ps, 0.25, rng=4)
        assert report.train_size + report.test_size == 600
        # Training error-rate close to the noise level (exact fit on train;
        # small slack for noise realization).
        assert 1 - report.train_metrics["accuracy"] <= 0.08
        # Held-out performance close behind: the boundary generalizes.
        assert report.test_metrics["accuracy"] >= 0.85
        assert abs(report.generalization_gap) < 0.15

    def test_entity_matching_workload(self):
        workload = generate_entity_matching(800, dim=2, label_noise=0.05, rng=5)
        report = holdout_evaluation(workload.points, rng=6)
        assert report.test_metrics["f1"] > 0.7


class TestCrossValidate:
    def test_folds_cover_everything(self):
        ps = planted_monotone(200, 2, noise=0.1, rng=7)
        rows = cross_validate(ps, folds=4, rng=8)
        assert len(rows) == 4
        assert {row["fold"] for row in rows} == {0.0, 1.0, 2.0, 3.0}
        for row in rows:
            assert 0 <= row["accuracy"] <= 1

    def test_validation(self):
        ps = planted_monotone(10, 2, rng=9)
        with pytest.raises(ValueError):
            cross_validate(ps, folds=1)
        with pytest.raises(ValueError):
            cross_validate(ps, folds=11)

    def test_low_noise_high_accuracy(self):
        ps = planted_monotone(400, 2, noise=0.02, rng=10)
        rows = cross_validate(ps, folds=5, rng=11)
        mean_accuracy = np.mean([row["accuracy"] for row in rows])
        assert mean_accuracy > 0.9
