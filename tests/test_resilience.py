"""Unit tests for the resilience layer (ISSUE 4).

Covers the fault model (deterministic injection, no charge on failed
attempts), the retry/breaker/reconciliation stack, the crash-safe probe
journal, shard-local budgets, hardened ``pool_map``, and oracle
consistency after a mid-recursion budget exhaustion.
"""

from __future__ import annotations

import json
import os
import signal
import time

import numpy as np
import pytest

from repro import LabelOracle, PointSet
from repro.core.active_1d import build_weighted_sample_1d
from repro.core.callback_oracle import CallbackOracle
from repro.core.oracle import OracleShard, ProbeBudgetExceeded
from repro.datasets.synthetic import planted_threshold_1d
from repro.parallel.pool import WorkerCrashError, pool_map
from repro.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    FaultSpec,
    FaultyOracle,
    JournaledOracle,
    OraclePermanentError,
    OracleTransientError,
    ProbeRetriesExhausted,
    ResilientOracle,
    RetryPolicy,
    journal_path,
    read_journal,
    replay_journal,
)


def _truth(n=60, seed=0):
    return planted_threshold_1d(n, noise=0.1, rng=seed)


# ----------------------------------------------------------------------
# Module-level pool tasks (must be picklable).
# ----------------------------------------------------------------------

def _identity(x):
    return x


def _kill_if_marked(x):
    if x == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    return x


def _die_once(task):
    sentinel, value = task
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return value


def _flaky_via_file(task):
    counter, value = task
    with open(counter, "a", encoding="utf-8") as handle:
        handle.write("x")
    with open(counter, "r", encoding="utf-8") as handle:
        attempts = len(handle.read())
    if attempts < 2:
        raise RuntimeError("first attempt always fails")
    return value


def _sleep_then_return(x):
    time.sleep(x)
    return x


class TestFaultSpec:
    def test_parse_full(self):
        spec = FaultSpec.parse(
            "transient=0.1, timeout=0.05, flip=0.02, dead=0.01,"
            "dead_indices=3;7, latency=0.2, seed=9")
        assert spec.transient_rate == 0.1
        assert spec.timeout_rate == 0.05
        assert spec.flip_rate == 0.02
        assert spec.dead_rate == 0.01
        assert spec.dead_indices == (3, 7)
        assert spec.latency_mean == 0.2
        assert spec.seed == 9
        assert spec.active

    def test_parse_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown fault spec field"):
            FaultSpec.parse("transiet=0.1")

    def test_parse_rejects_non_number(self):
        with pytest.raises(ValueError, match="not a number"):
            FaultSpec.parse("transient=lots")

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(transient_rate=1.5)

    def test_empty_spec_inactive(self):
        assert not FaultSpec().active


class TestFaultyOracle:
    def test_fault_pattern_is_deterministic(self):
        truth = _truth()
        spec = FaultSpec(transient_rate=0.3, seed=5)

        def pattern():
            faulty = FaultyOracle(LabelOracle(truth), spec)
            outcomes = []
            for index in range(truth.n):
                try:
                    outcomes.append(faulty.probe(index))
                except OracleTransientError:
                    outcomes.append("fault")
            return outcomes

        first, second = pattern(), pattern()
        assert first == second
        assert "fault" in first  # 30% over 60 probes: some must fire

    def test_failed_attempts_charge_nothing(self):
        truth = _truth()
        inner = LabelOracle(truth)
        faulty = FaultyOracle(inner, FaultSpec(transient_rate=1.0))
        with pytest.raises(OracleTransientError):
            faulty.probe(0)
        assert inner.cost == 0
        assert faulty.faults_injected == 1

    def test_retry_recovers_without_extra_charges(self):
        truth = _truth()
        inner = LabelOracle(truth)
        stack = ResilientOracle(
            FaultyOracle(inner, FaultSpec(transient_rate=0.4, seed=2)),
            RetryPolicy(max_attempts=12),
        )
        labels = [stack.probe(i) for i in range(truth.n)]
        assert labels == [int(v) for v in truth.labels]
        assert inner.cost == truth.n  # one charge per point, never more

    def test_dead_index_is_permanent_across_attempts(self):
        truth = _truth()
        faulty = FaultyOracle(LabelOracle(truth), FaultSpec(dead_indices=(4,)))
        for _ in range(3):
            with pytest.raises(OraclePermanentError):
                faulty.probe(4)
        assert faulty.probe(5) in (0, 1)

    def test_flips_can_disagree_across_reprobes(self):
        truth = _truth()
        faulty = FaultyOracle(LabelOracle(truth), FaultSpec(flip_rate=0.5, seed=1))
        readings = {faulty.probe(0) for _ in range(12)}
        assert readings == {0, 1}

    def test_timeout_against_simulated_latency(self):
        truth = _truth()
        faulty = FaultyOracle(LabelOracle(truth),
                              FaultSpec(latency_mean=1.0, seed=0),
                              timeout=1e-9)
        from repro.resilience import OracleTimeoutError

        with pytest.raises(OracleTimeoutError):
            faulty.probe(0)

    def test_shard_reapplies_fault_model(self):
        truth = _truth()
        parent = FaultyOracle(LabelOracle(truth), FaultSpec(transient_rate=1.0))
        shard = parent.shard([0, 1, 2])
        assert isinstance(shard, FaultyOracle)
        with pytest.raises(OracleTransientError):
            shard.probe(0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(votes=2)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.05,
                             jitter=0.0)
        delays = [policy.delay_for(0, k) for k in range(1, 8)]
        assert delays == sorted(delays)
        assert delays[-1] == 0.05

    def test_jitter_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=3)
        a = policy.delay_for(7, 1)
        b = policy.delay_for(7, 1)
        assert a == b
        assert 0.05 <= a <= 0.1
        assert policy.delay_for(8, 1) != a  # per-index stream


class TestResilientOracle:
    def test_exhaustion_raises_with_cause(self):
        truth = _truth()
        stack = ResilientOracle(
            FaultyOracle(LabelOracle(truth), FaultSpec(transient_rate=1.0)),
            RetryPolicy(max_attempts=3),
        )
        with pytest.raises(ProbeRetriesExhausted) as excinfo:
            stack.probe(0)
        assert excinfo.value.index == 0
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, OracleTransientError)
        assert stack.retries == 2  # attempts 2 and 3 were retries

    def test_permanent_error_not_retried(self):
        truth = _truth()
        stack = ResilientOracle(
            FaultyOracle(LabelOracle(truth), FaultSpec(dead_indices=(0,))),
            RetryPolicy(max_attempts=5),
        )
        with pytest.raises(OraclePermanentError):
            stack.probe(0)
        assert stack.retries == 0

    def test_majority_vote_fixes_flips(self):
        truth = _truth(n=40)
        inner = LabelOracle(truth)
        stack = ResilientOracle(
            FaultyOracle(inner, FaultSpec(flip_rate=0.05, seed=4)),
            RetryPolicy(max_attempts=3, votes=5),
        )
        labels = [stack.probe(i) for i in range(truth.n)]
        assert labels == [int(v) for v in truth.labels]
        assert stack.reconciliations > 0
        assert inner.cost == truth.n


class TestCircuitBreaker:
    def test_trips_after_threshold_and_half_open_recovers(self):
        breaker = CircuitBreaker(threshold=3, cooldown=2)
        for _ in range(3):
            breaker.before_call()
            breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1
        # Rejections while open.
        with pytest.raises(CircuitOpenError):
            breaker.before_call()
        # Cooldown reached: the next call is the half-open trial.
        breaker.before_call()
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record_failure()
        assert breaker.state == "open"
        breaker.before_call()  # trial
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_breaker_opens_through_resilient_oracle(self):
        truth = _truth()
        stack = ResilientOracle(
            FaultyOracle(LabelOracle(truth), FaultSpec(transient_rate=1.0)),
            RetryPolicy(max_attempts=10),
            CircuitBreaker(threshold=4, cooldown=100),
        )
        with pytest.raises((ProbeRetriesExhausted, CircuitOpenError)):
            stack.probe(0)
        assert stack.breaker.state == "open"


class TestJournal:
    def test_journal_and_replay_round_trip(self, tmp_path):
        truth = _truth()
        path = tmp_path / "probes.journal"
        inner = LabelOracle(truth)
        journaled = JournaledOracle(inner, path, meta={"n": truth.n})
        for index in (3, 1, 3, 5):  # the repeat must not re-journal
            journaled.probe(index)
        journaled.close()
        assert journaled.appends == 3

        meta, revealed = read_journal(path)
        assert meta == {"n": truth.n}
        assert set(revealed) == {1, 3, 5}

        fresh = LabelOracle(truth)
        assert replay_journal(path, fresh) == 3
        assert fresh.cost == 3
        assert fresh.peek(3) == int(truth.labels[3])
        # Restored labels are free: re-probing charges nothing new.
        fresh.probe(3)
        assert fresh.cost == 3

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "torn.journal"
        path.write_text('{"i": 1, "l": 0}\n{"i": 2, "l"', encoding="utf-8")
        _meta, revealed = read_journal(path)
        assert revealed == {1: 0}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "corrupt.journal"
        path.write_text('not json\n{"i": 1, "l": 0}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt probe journal"):
            read_journal(path)

    def test_restore_rejects_contradicting_label(self):
        truth = _truth()
        oracle = LabelOracle(truth)
        wrong = {0: 1 - int(truth.labels[0])}
        with pytest.raises(ValueError, match="contradicts"):
            oracle.restore(wrong)

    def test_callback_oracle_restore_skips_labeler(self):
        truth = _truth()

        def labeler(coords):  # pragma: no cover - must never be called
            raise AssertionError("restore must not re-pay the labeler")

        oracle = CallbackOracle(truth.with_hidden_labels(), labeler)
        assert oracle.restore({0: 1, 4: 0}) == 2
        assert oracle.cost == 2
        assert oracle.probe(0) == 1  # cached, labeler not invoked

    def test_journal_path_is_sibling(self, tmp_path):
        assert journal_path(tmp_path / "run.ckpt.json").name == \
            "run.ckpt.json.journal"


class TestShardBudget:
    def test_shard_budget_enforced_shard_side(self):
        truth = _truth()
        oracle = LabelOracle(truth)
        shard = oracle.shard(range(10), budget=3)
        for index in range(3):
            shard.probe(index)
        with pytest.raises(ProbeBudgetExceeded, match="shard probe budget"):
            shard.probe(3)
        # Repeats and preknown stay free even at the cap.
        assert shard.probe(0) in (0, 1)
        assert shard.cost == 3
        assert shard.remaining_budget() == 0

    def test_unbudgeted_shard_caught_at_absorb(self):
        truth = _truth()
        oracle = LabelOracle(truth, budget=2)
        shard = oracle.shard(range(10))  # no shard-side cap
        for index in range(5):
            shard.probe(index)  # over-spends silently in the worker
        with pytest.raises(ProbeBudgetExceeded):
            oracle.absorb(shard.log, shard.new_revealed)
        assert oracle.cost == 2  # budget exactly exhausted, not blown past

    def test_preknown_labels_do_not_count_against_budget(self):
        truth = _truth()
        oracle = LabelOracle(truth)
        oracle.probe(0)
        shard = oracle.shard(range(5), budget=1)
        assert shard.probe(0) in (0, 1)  # preknown: free
        shard.probe(1)  # the single budgeted charge
        with pytest.raises(ProbeBudgetExceeded):
            shard.probe(2)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            OracleShard(labels={0: 1}, budget=-1)


class TestPoolHardening:
    def test_task_retries_serial(self, tmp_path):
        counter = str(tmp_path / "attempts")
        results = pool_map(_flaky_via_file, [(counter, "ok")], workers=1,
                           task_retries=2)
        assert results == ["ok"]

    def test_task_retries_parallel(self, tmp_path):
        counter = str(tmp_path / "attempts")
        results = pool_map(_flaky_via_file, [(counter, "ok")], workers=2,
                           task_retries=2)
        assert results == ["ok"]

    def test_task_retries_exhausted_reports_last_error(self):
        def always_fails(_x):
            raise RuntimeError("never works")

        results = pool_map(always_fails, [1], workers=1, task_retries=2,
                           return_exceptions=True)
        assert isinstance(results[0], RuntimeError)

    def test_sigkilled_worker_yields_crash_error_not_poison(self):
        tasks = ["a", "die", "b", "c"]
        results = pool_map(_kill_if_marked, tasks, workers=2,
                           return_exceptions=True)
        assert results[0] == "a"
        assert isinstance(results[1], WorkerCrashError)
        assert results[2] == "b"
        assert results[3] == "c"

    def test_sigkilled_worker_raises_without_return_exceptions(self):
        with pytest.raises(WorkerCrashError):
            pool_map(_kill_if_marked, ["a", "die"], workers=2)

    def test_one_time_crash_recovers_on_fresh_pool(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        results = pool_map(_die_once, [(sentinel, "recovered")], workers=2)
        assert results == ["recovered"]

    def test_task_timeout_flags_straggler(self):
        results = pool_map(_sleep_then_return, [0.01, 30.0], workers=2,
                           task_timeout=1.0, return_exceptions=True)
        assert results[0] == 0.01
        assert isinstance(results[1], TimeoutError)


class TestBudgetExhaustionConsistency:
    """ProbeBudgetExceeded mid-recursion leaves the oracle resumable."""

    def _run_until_exhausted(self, truth, budget):
        oracle = LabelOracle(truth, budget=budget)
        values = truth.coords[:, 0]
        with pytest.raises(ProbeBudgetExceeded):
            build_weighted_sample_1d(values, np.arange(truth.n), oracle,
                                     epsilon=0.5, delta=0.1, rng=0)
        return oracle

    def test_oracle_state_coherent_after_exhaustion(self):
        truth = _truth(n=200, seed=3)
        oracle = self._run_until_exhausted(truth, budget=40)
        assert oracle.cost == 40  # exactly exhausted, never overdrawn
        assert len(oracle.revealed_indices) == 40
        assert set(oracle.revealed_indices) <= set(oracle.log)
        for index in oracle.revealed_indices:
            assert oracle.peek(index) == int(truth.labels[index])
        # The failed probe was logged as a request but never charged.
        assert oracle.total_requests >= oracle.cost

    def test_resume_after_exhaustion_pays_zero_duplicates(self):
        truth = _truth(n=200, seed=3)
        exhausted = self._run_until_exhausted(truth, budget=40)
        paid = {i: exhausted.peek(i) for i in exhausted.revealed_indices}

        # Reference: the same run, uninterrupted.
        reference = LabelOracle(truth)
        ref_sigma, _, _ = build_weighted_sample_1d(
            truth.coords[:, 0], np.arange(truth.n), reference,
            epsilon=0.5, delta=0.1, rng=0)

        # Resume: restore the paid probes, lift the budget, rerun with the
        # same seed.  Restored labels are free dedup hits, so the total
        # charged across both runs equals the single-run cost.
        resumed = LabelOracle(truth)
        assert resumed.restore(paid) == 40
        sigma, _, _ = build_weighted_sample_1d(
            truth.coords[:, 0], np.arange(truth.n), resumed,
            epsilon=0.5, delta=0.1, rng=0)
        new_charges = resumed.cost - 40
        assert 40 + new_charges == reference.cost
        assert sigma.weights == ref_sigma.weights
        assert sigma.labels == ref_sigma.labels


class TestDegradedRecursion:
    def test_degrade_returns_partial_sigma_with_halt_trace(self):
        truth = _truth(n=200, seed=3)
        oracle = LabelOracle(truth, budget=40)
        sigma, _levels, trace = build_weighted_sample_1d(
            truth.coords[:, 0], np.arange(truth.n), oracle,
            epsilon=0.5, delta=0.1, rng=0, degrade=True)
        assert trace[-1].kind == "halted"
        assert "ProbeBudgetExceeded" in (trace[-1].note or "")
        assert 0 < sigma.size <= 40
        assert oracle.cost == 40
