"""Tests for label repair (repro.core.repair) and CallbackOracle."""

from __future__ import annotations

import pytest

from repro import PointSet, ProbeBudgetExceeded, active_classify, error_count
from repro.core.callback_oracle import CallbackOracle
from repro.core.repair import repair_labels
from repro.datasets.synthetic import planted_monotone, width_controlled


class TestRepairLabels:
    def test_already_monotone_untouched(self, monotone_2d):
        report = repair_labels(monotone_2d)
        assert report.num_flips == 0
        assert report.repair_weight == 0.0
        assert (report.repaired.labels == monotone_2d.labels).all()

    def test_repair_is_monotone_and_minimal(self, tiny_2d):
        report = repair_labels(tiny_2d)
        assert report.repaired.is_monotone_labeling()
        assert report.repair_weight == 1.0  # the known optimum
        assert report.num_flips == 1

    def test_direction_counts(self):
        # A 1 below a 0: one of them flips.
        ps = PointSet([(0.0,), (1.0,)], [1, 0], [1.0, 10.0])
        report = repair_labels(ps)
        # Cheapest repair flips the label-1 point to 0... wait: weight 1
        # on the label-1 point, so flip it (1 -> 0).
        assert report.flips_1_to_0 + report.flips_0_to_1 == 1
        assert report.repair_weight == 1.0

    def test_weights_steer_the_repair(self):
        ps = PointSet([(0.0,), (1.0,)], [1, 0], [10.0, 1.0])
        report = repair_labels(ps)
        assert report.flipped_indices == [1]
        assert report.flips_0_to_1 == 1

    def test_flip_count_bounded_by_injected_noise(self):
        clean = planted_monotone(300, 2, noise=0.0, rng=0)
        from repro.datasets.noise import uniform_flip

        noisy = uniform_flip(clean, 0.1, rng=1)
        injected = int((noisy.labels != clean.labels).sum())
        report = repair_labels(noisy)
        # Reverting the injected flips is one valid repair; the optimum
        # cannot cost more.
        assert report.repair_weight <= injected

    def test_requires_labels(self, tiny_2d):
        with pytest.raises(ValueError):
            repair_labels(tiny_2d.with_hidden_labels())


class TestCallbackOracle:
    @pytest.fixture
    def workload(self):
        return width_controlled(1_000, 3, noise=0.0, rng=2)

    def test_calls_labeler_once_per_point(self, workload):
        calls = []

        def labeler(coords):
            calls.append(coords)
            return 1 if coords[0] + coords[1] > 0 else 0

        oracle = CallbackOracle(workload.with_hidden_labels(), labeler)
        oracle.probe(5)
        oracle.probe(5)
        oracle.probe(7)
        assert len(calls) == 2
        assert oracle.cost == 2
        assert oracle.total_requests == 3

    def test_budget_enforced(self, workload):
        oracle = CallbackOracle(workload.with_hidden_labels(),
                                lambda c: 0, budget=1)
        oracle.probe(0)
        with pytest.raises(ProbeBudgetExceeded):
            oracle.probe(1)

    def test_rejects_bad_labeler_output(self, workload):
        oracle = CallbackOracle(workload.with_hidden_labels(), lambda c: 7)
        with pytest.raises(ValueError):
            oracle.probe(0)

    def test_index_bounds(self, workload):
        oracle = CallbackOracle(workload.with_hidden_labels(), lambda c: 0)
        with pytest.raises(IndexError):
            oracle.probe(10_000)

    def test_drives_the_active_algorithm(self, workload):
        """End to end: active learning against a labeling function."""
        truth = {tuple(float(c) for c in workload.coords[i]):
                 int(workload.labels[i]) for i in range(workload.n)}

        oracle = CallbackOracle(workload.with_hidden_labels(),
                                lambda coords: truth[coords])
        result = active_classify(workload.with_hidden_labels(), oracle,
                                 epsilon=1.0, rng=3)
        # Clean labels: the learner should be exactly right.
        assert error_count(workload, result.classifier) == 0
        assert result.probing_cost == oracle.cost

    def test_revealed_labels_vector(self, workload):
        oracle = CallbackOracle(workload.with_hidden_labels(), lambda c: 1)
        oracle.probe(3)
        revealed = oracle.revealed_labels(workload.n)
        assert revealed[3] == 1
        assert (revealed != -1).sum() == 1

    def test_repr(self, workload):
        oracle = CallbackOracle(workload.with_hidden_labels(), lambda c: 0,
                                budget=9)
        assert "budget=9" in repr(oracle)
