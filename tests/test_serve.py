"""Tests for the hardened serving layer (repro.serve)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.classifier import ConstantClassifier, ThresholdClassifier
from repro.core.points import PointSet
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.serve import (
    ARTIFACT_MAGIC,
    ARTIFACT_SCHEMA_VERSION,
    ModelArtifact,
    QueryResult,
    ServeEngine,
    ServeFaultSpec,
    ServeLoadTransient,
    artifact_digest,
    fit_artifact,
    last_good_path,
    load_artifact,
    quarantine_artifact,
    read_serve_journal,
    rotated_journal_segments,
    save_artifact,
)


@pytest.fixture
def labeled_points(rng):
    coords = rng.random((40, 2))
    labels = (coords.sum(axis=1) > 1.0).astype(int)
    labels[:3] ^= 1  # a little noise so the fit is non-trivial
    return PointSet(coords, labels)


@pytest.fixture
def artifact(labeled_points):
    return fit_artifact(labeled_points, "passive")


@pytest.fixture
def deployed(tmp_path, artifact):
    path = tmp_path / "model.json"
    save_artifact(artifact, path)
    return path


class TestArtifact:
    def test_round_trip_preserves_predictions(self, deployed, artifact, rng):
        loaded = load_artifact(deployed)
        probes = rng.random((64, 2))
        assert (loaded.classifier.classify_matrix(probes)
                == artifact.classifier.classify_matrix(probes)).all()
        assert loaded.digest == artifact.digest
        assert loaded.fit["mode"] == "passive"
        assert loaded.chains is not None
        assert loaded.certificate is not None
        assert loaded.fallback is not None

    def test_digest_is_canonical(self, artifact):
        body = artifact.body()
        digest = artifact_digest(body)
        # Key order must not matter: the digest is over sorted-key JSON.
        reordered = dict(reversed(list(body.items())))
        assert artifact_digest(reordered) == digest

    def test_envelope_fields(self, deployed):
        envelope = json.loads(deployed.read_text())
        assert envelope["magic"] == ARTIFACT_MAGIC
        assert envelope["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert envelope["digest"] == artifact_digest(envelope["body"])

    def test_content_mutation_rejected(self, deployed):
        envelope = json.loads(deployed.read_text())
        envelope["body"]["fit"]["n"] = 999_999  # tamper, keep stale digest
        deployed.write_text(json.dumps(envelope))
        with pytest.raises(ValueError, match="digest mismatch"):
            load_artifact(deployed)

    def test_truncation_rejected_naming_file(self, deployed):
        text = deployed.read_text()
        deployed.write_text(text[: len(text) // 2])
        with pytest.raises(ValueError, match=str(deployed)):
            load_artifact(deployed)

    def test_wrong_magic_and_schema_rejected(self, tmp_path, artifact):
        path = tmp_path / "m.json"
        save_artifact(artifact, path)
        envelope = json.loads(path.read_text())
        envelope["magic"] = "something-else"
        path.write_text(json.dumps(envelope))
        with pytest.raises(ValueError, match="not a model artifact"):
            load_artifact(path)
        envelope["magic"] = ARTIFACT_MAGIC
        envelope["schema_version"] = 99
        path.write_text(json.dumps(envelope))
        with pytest.raises(ValueError, match="schema version"):
            load_artifact(path)

    def test_missing_file_raises_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_artifact(tmp_path / "nope.json")

    def test_cosmetic_whitespace_still_verifies(self, deployed):
        envelope = json.loads(deployed.read_text())
        deployed.write_text(json.dumps(envelope, indent=4))  # reformat only
        loaded = load_artifact(deployed)
        assert loaded.digest == envelope["digest"]

    def test_quarantine_moves_bytes_aside(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("hostile")
        target = quarantine_artifact(path, reason="test")
        assert target is not None and target.exists()
        assert not path.exists()
        assert target.read_text() == "hostile"
        # Second quarantine of the same name picks a fresh slot.
        path.write_text("hostile2")
        target2 = quarantine_artifact(path)
        assert target2 != target

    def test_quarantine_vanished_file(self, tmp_path):
        assert quarantine_artifact(tmp_path / "gone.json") is None

    def test_fit_active_mode(self, labeled_points):
        art = fit_artifact(labeled_points, "active", epsilon=0.5, seed=3)
        assert art.fit["mode"] == "active"
        assert art.fit["probes"] > 0
        assert art.fit["num_chains"] >= 1
        assert art.fallback is not None

    def test_fit_unknown_mode(self, labeled_points):
        with pytest.raises(ValueError, match="unknown fit mode"):
            fit_artifact(labeled_points, "psychic")

    def test_fallback_is_weighted_majority(self):
        pts = PointSet([[0.0], [1.0], [2.0]], [1, 1, 0], weights=[1, 1, 5])
        art = fit_artifact(pts, "passive", include_chains=False)
        assert isinstance(art.fallback, ConstantClassifier)
        assert art.fallback.value == 0  # weight 5 beats 2


class TestServeEngine:
    def test_primary_serving_is_verified(self, deployed, rng):
        with ServeEngine(deployed) as engine:
            result = engine.classify_batch(rng.random((32, 2)))
            assert result.ok and not result.degraded
            assert result.source == "primary"
            assert engine.serving_verified
            single = engine.classify((0.9, 0.9))
            assert single.label in (0, 1)

    def test_corrupt_primary_falls_back_to_last_good(self, deployed, rng):
        engine = ServeEngine(deployed)
        engine.reload()  # writes the last-good copy
        assert last_good_path(deployed).exists()
        deployed.write_text("garbage")
        assert engine.reload() is True  # last-good is digest-verified
        assert engine.source == "last_good"
        result = engine.classify_batch(rng.random((8, 2)))
        assert result.ok and not result.degraded
        assert engine.quarantines == 1
        assert not deployed.exists()  # quarantined aside

    def test_no_rungs_left_degrades_to_embedded_fallback(self, deployed, rng):
        engine = ServeEngine(deployed)
        engine.reload()
        deployed.write_text("garbage")
        last_good_path(deployed).write_text("also garbage")
        assert engine.reload() is False
        assert engine.source == "fallback"
        result = engine.classify_batch(rng.random((8, 2)))
        assert result.status == "degraded" and result.degraded

    def test_cold_start_on_corrupt_uses_constructor_fallback(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("garbage")
        engine = ServeEngine(path, fallback=ConstantClassifier(1),
                             keep_last_good=False)
        result = engine.classify((0.5, 0.5))
        assert result.status == "degraded"
        assert result.label == 1

    def test_no_fallback_fails_explicitly(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("garbage")
        engine = ServeEngine(path, fallback=None, keep_last_good=False)
        result = engine.classify((0.5, 0.5))
        assert result.status == "failed" and result.labels is None

    def test_transient_loads_retry(self, deployed):
        real = load_artifact
        failures = {"left": 2}

        def flaky(path):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise ServeLoadTransient("slow volume")
            return real(path)

        engine = ServeEngine(deployed, loader=flaky,
                             retry=RetryPolicy(max_attempts=3))
        assert engine.reload() is True
        assert engine.source == "primary"

    def test_transients_past_budget_degrade(self, deployed):
        def always_slow(path):
            raise ServeLoadTransient("dead volume")

        engine = ServeEngine(deployed, loader=always_slow,
                             retry=RetryPolicy(max_attempts=2),
                             keep_last_good=False)
        assert engine.reload() is False
        assert engine.source == "fallback"

    def test_breaker_short_circuits_flapping_store(self, deployed):
        calls = {"n": 0}

        def always_slow(path):
            calls["n"] += 1
            raise ServeLoadTransient("flapping")

        breaker = CircuitBreaker(threshold=2, cooldown=1000)
        engine = ServeEngine(deployed, loader=always_slow, breaker=breaker,
                             retry=RetryPolicy(max_attempts=5),
                             keep_last_good=False)
        engine.reload()
        first = calls["n"]
        assert first == 2  # breaker opened after the threshold
        engine.reload()
        assert calls["n"] == first  # open breaker: no load attempts at all

    def test_queue_sheds_excess_load(self, deployed, rng):
        engine = ServeEngine(deployed, queue_limit=2)
        outcomes = [engine.submit(rng.random((4, 2))) for _ in range(5)]
        admitted = [o for o in outcomes if o is None]
        shed = [o for o in outcomes if o is not None]
        assert len(admitted) == 2 and len(shed) == 3
        assert all(s.status == "overloaded" for s in shed)
        assert engine.queue_depth == 2
        answered = engine.drain()
        assert len(answered) == 2 and all(a.ok for a in answered)
        assert engine.queue_depth == 0

    def test_deadline_expires_in_queue(self, deployed, rng):
        now = {"t": 0.0}
        engine = ServeEngine(deployed, clock=lambda: now["t"],
                             queue_limit=8)
        engine.submit(rng.random((4, 2)), deadline=1.0)
        engine.submit(rng.random((4, 2)), deadline=100.0)
        now["t"] = 5.0  # the first request is now stale
        expired, fresh = engine.drain()
        assert expired.status == "deadline_exceeded"
        assert expired.labels is None
        assert fresh.ok

    def test_malformed_query_fails_alone(self, deployed, rng):
        engine = ServeEngine(deployed)
        bad = engine.classify_batch(rng.random((4, 7)))  # wrong dim
        assert bad.status == "failed"
        good = engine.classify_batch(rng.random((4, 2)))
        assert good.ok  # the server survived the bad request

    def test_journal_and_warm_restart(self, deployed, tmp_path, rng):
        journal = tmp_path / "serve.journal"
        engine = ServeEngine(deployed, journal_path=journal)
        for _ in range(3):
            engine.classify_batch(rng.random((5, 2)))
        engine.abandon()  # SIGKILL-equivalent: no shutdown marker

        meta, last_seq, answered, digest = read_serve_journal(journal)
        assert meta is not None and meta["artifact_path"] == str(deployed)
        assert answered == 3 and last_seq == 2
        assert digest is not None

        restarted = ServeEngine.warm_restart(deployed, journal)
        assert restarted.resumed_requests == 3
        result = restarted.classify_batch(rng.random((5, 2)))
        assert result.ok
        assert result.request_id == 3  # sequence resumed, not restarted

    def test_journal_tolerates_truncated_tail(self, deployed, tmp_path, rng):
        journal = tmp_path / "serve.journal"
        engine = ServeEngine(deployed, journal_path=journal)
        engine.classify_batch(rng.random((5, 2)))
        engine.abandon()
        with open(journal, "a") as handle:
            handle.write('{"seq": 1, "n":')  # crash mid-append
        meta, last_seq, answered, _ = read_serve_journal(journal)
        assert last_seq == 0 and answered == 1

    def test_journal_mid_file_corruption_is_an_error(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        journal.write_text('{"seq": 0, "n": 1, "status": "ok"}\n'
                           "GARBAGE\n"
                           '{"seq": 1, "n": 1, "status": "ok"}\n')
        with pytest.raises(ValueError, match=str(journal)):
            read_serve_journal(journal)

    def test_query_result_views(self):
        r = QueryResult(0, "ok", "primary", labels=np.array([1, 0]))
        assert r.ok and r.label == 1 and r.n == 2
        empty = QueryResult(1, "overloaded", "primary")
        assert empty.label is None and empty.n == 0

    def test_bad_queue_limit_rejected(self, deployed):
        with pytest.raises(ValueError, match="queue_limit"):
            ServeEngine(deployed, queue_limit=0)


class TestServeMetrics:
    def test_latency_histogram_and_counters(self, deployed, rng):
        from repro import obs

        registry = obs.MetricsRegistry("serve-test")
        with obs.metrics_session(registry):
            engine = ServeEngine(deployed, queue_limit=1)
            engine.classify_batch(rng.random((16, 2)))
            engine.submit(rng.random((4, 2)))
            engine.submit(rng.random((4, 2)))  # shed
            engine.drain()
        counters = registry.counters
        assert counters["serve.requests"].value == 2
        assert counters["serve.points"].value == 20
        assert counters["serve.shed"].value == 1
        assert counters["serve.installs.primary"].value == 1
        assert "serve.request_seconds" in registry.timers


class TestFaultSpec:
    def test_parse_round_trip(self):
        spec = ServeFaultSpec.parse("corrupt=0.05, delay=0.1, kill=0.02, seed=7")
        assert spec == ServeFaultSpec(0.05, 0.1, 0.02, seed=7)
        assert spec.active

    def test_parse_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown serve fault spec"):
            ServeFaultSpec.parse("corupt=0.5")

    def test_parse_rejects_non_numeric(self):
        with pytest.raises(ValueError, match="not a number"):
            ServeFaultSpec.parse("corrupt=lots")

    def test_rates_validated(self):
        with pytest.raises(ValueError, match="corrupt_rate"):
            ServeFaultSpec(corrupt_rate=1.5)

    def test_empty_spec_inactive(self):
        assert not ServeFaultSpec.parse("").active


class TestServeCli:
    def test_fit_serve_pipeline(self, tmp_path, capsys):
        from repro.cli import main

        data = tmp_path / "data.csv"
        model = tmp_path / "model.json"
        answers = tmp_path / "answers.json"
        assert main(["generate", str(data), "--n", "80", "--seed", "5"]) == 0
        assert main(["fit", str(data), str(model)]) == 0
        out = capsys.readouterr().out
        assert "sha256" in out
        assert main(["serve", str(model), str(data),
                     "--output", str(answers)]) == 0
        doc = json.loads(answers.read_text())
        assert len(doc["labels"]) == 80
        assert all(label in (0, 1) for label in doc["labels"])
        assert doc["source"] == "primary"

    def test_serve_degrades_on_corrupt_artifact(self, tmp_path, capsys):
        from repro.cli import main

        data = tmp_path / "data.csv"
        model = tmp_path / "model.json"
        assert main(["generate", str(data), "--n", "40", "--seed", "5"]) == 0
        assert main(["fit", str(data), str(model)]) == 0
        model.write_text("hostile bytes")
        # Graceful degradation: exit 0, answers flagged, file quarantined.
        assert main(["serve", str(model), str(data)]) == 0
        out = capsys.readouterr().out
        assert "fallback" in out
        assert not model.exists()
        assert model.with_name("model.json.quarantined").exists()

    def test_serve_requires_queries_or_chaos(self, tmp_path):
        from repro.cli import main

        model = tmp_path / "model.json"
        assert main(["serve", str(model)]) == 2

    def test_serve_missing_artifact_is_input_error(self, tmp_path, capsys):
        from repro.cli import main

        data = tmp_path / "data.csv"
        assert main(["generate", str(data), "--n", "20", "--seed", "5"]) == 0
        capsys.readouterr()
        # A never-existed artifact path is a CLI input error (exit 2), not
        # a degradation scenario -- there is no deployment to fall back on.
        assert main(["serve", str(tmp_path / "nope.json"), str(data)]) == 2
        err = capsys.readouterr().err
        assert "nope.json" in err and "not found" in err

    def test_serve_missing_primary_with_last_good_degrades_gracefully(
        self, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.serve import last_good_path

        data = tmp_path / "data.csv"
        model = tmp_path / "model.json"
        assert main(["generate", str(data), "--n", "30", "--seed", "5"]) == 0
        assert main(["fit", str(data), str(model)]) == 0
        # Prime the last-good copy, then lose the primary (post-crash state).
        assert main(["serve", str(model), str(data)]) == 0
        model.unlink()
        assert last_good_path(model).exists()
        assert main(["serve", str(model), str(data)]) == 0
        out = capsys.readouterr().out
        assert "last_good" in out

    def test_fit_active_cli(self, tmp_path):
        from repro.cli import main

        data = tmp_path / "data.csv"
        model = tmp_path / "model.json"
        assert main(["generate", str(data), "--n", "30", "--seed", "1"]) == 0
        assert main(["fit", str(data), str(model), "--mode", "active",
                     "--epsilon", "0.5"]) == 0
        art = load_artifact(model)
        assert art.fit["mode"] == "active"

    def test_serve_chaos_cli(self, tmp_path, capsys):
        from repro.cli import main

        data = tmp_path / "data.csv"
        model = tmp_path / "model.json"
        assert main(["generate", str(data), "--n", "60", "--seed", "2"]) == 0
        assert main(["fit", str(data), str(model)]) == 0
        assert main(["serve", str(model), "--chaos",
                     "corrupt=0.2,delay=0.2,kill=0.1,seed=3",
                     "--chaos-queries", "3000",
                     "--batch-size", "256"]) == 0
        out = capsys.readouterr().out
        assert "wrong" in out


class TestArtifactFuzz:
    def test_envelope_boundary_holds(self, labeled_points, rng):
        from repro.fuzz.runner import fuzz_artifact_roundtrip

        tried, violations, archived = fuzz_artifact_roundtrip(
            labeled_points, rng, mutations_per_text=24)
        assert tried == 24
        assert violations == []
        assert archived == []

    def test_threshold_artifact_serves(self, tmp_path, rng):
        # Non-upset families ride the same envelope.
        art = ModelArtifact(classifier=ThresholdClassifier(0.5, dim=0),
                            fit={"mode": "manual", "dim": 1})
        path = tmp_path / "t.json"
        save_artifact(art, path)
        engine = ServeEngine(path)
        result = engine.classify_batch(rng.random((8, 1)))
        assert result.ok


class TestJournalRotation:
    def test_rotation_caps_live_file(self, deployed, tmp_path, rng):
        journal = tmp_path / "serve.journal"
        engine = ServeEngine(deployed, journal_path=journal,
                             journal_max_bytes=256, journal_keep=4)
        for _ in range(20):
            engine.classify_batch(rng.random((3, 2)))
        engine.close()
        assert journal.stat().st_size <= 256
        segments = rotated_journal_segments(journal)
        assert segments  # at least one rotation happened
        # Oldest-first stitching order: .k, ..., .1
        names = [segment.name for segment in segments]
        assert names == [f"serve.journal.{k}"
                         for k in range(len(segments), 0, -1)]

    def test_rotated_segments_each_self_describing(self, deployed, tmp_path,
                                                   rng):
        journal = tmp_path / "serve.journal"
        engine = ServeEngine(deployed, journal_path=journal,
                             journal_max_bytes=256)
        for _ in range(20):
            engine.classify_batch(rng.random((3, 2)))
        engine.close()
        for segment in rotated_journal_segments(journal) + [journal]:
            first = json.loads(segment.read_text().splitlines()[0])
            assert "meta" in first  # every segment re-writes the meta line

    def test_oldest_segment_dropped_beyond_keep(self, deployed, tmp_path,
                                                rng):
        journal = tmp_path / "serve.journal"
        engine = ServeEngine(deployed, journal_path=journal,
                             journal_max_bytes=128, journal_keep=2)
        for _ in range(40):
            engine.classify_batch(rng.random((3, 2)))
        engine.close()
        assert len(rotated_journal_segments(journal)) <= 2

    def test_read_stitches_rotated_segments(self, deployed, tmp_path, rng):
        journal = tmp_path / "serve.journal"
        engine = ServeEngine(deployed, journal_path=journal,
                             journal_max_bytes=256, journal_keep=8)
        for _ in range(15):
            engine.classify_batch(rng.random((3, 2)))
        engine.close()
        assert rotated_journal_segments(journal)
        meta, last_seq, answered, digest = read_serve_journal(journal)
        assert meta is not None
        assert answered == 15 and last_seq == 14
        assert digest is not None

    def test_warm_restart_across_rotation_boundary(self, deployed, tmp_path,
                                                   rng):
        journal = tmp_path / "serve.journal"
        engine = ServeEngine(deployed, journal_path=journal,
                             journal_max_bytes=256, journal_keep=8)
        for _ in range(15):
            engine.classify_batch(rng.random((3, 2)))
        engine.abandon()  # SIGKILL-equivalent mid-stream

        restarted = ServeEngine.warm_restart(
            deployed, journal, journal_max_bytes=256, journal_keep=8)
        assert restarted.resumed_requests == 15
        result = restarted.classify_batch(rng.random((3, 2)))
        assert result.ok
        assert result.request_id == 15  # sequence spans the rotation
        restarted.close()

    def test_corruption_in_rotated_segment_is_an_error(self, deployed,
                                                       tmp_path, rng):
        journal = tmp_path / "serve.journal"
        engine = ServeEngine(deployed, journal_path=journal,
                             journal_max_bytes=256)
        for _ in range(15):
            engine.classify_batch(rng.random((3, 2)))
        engine.close()
        segment = rotated_journal_segments(journal)[0]
        with open(segment, "a") as handle:
            handle.write('{"seq": 99, "n":')  # torn tail in an OLD segment
        # Only the *newest* file may have a torn tail; rotation only ever
        # happens between complete fsynced lines.
        with pytest.raises(ValueError, match=str(segment)):
            read_serve_journal(journal)

    def test_journal_params_validated(self, deployed, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ServeEngine(deployed, journal_path=tmp_path / "j",
                        journal_max_bytes=0)
        with pytest.raises(ValueError, match="keep_segments"):
            ServeEngine(deployed, journal_path=tmp_path / "j",
                        journal_keep=0)


class TestTornTail:
    @pytest.mark.parametrize("cut", [3, 11, 23])
    def test_multi_record_torn_tail_tolerated(self, deployed, tmp_path, rng,
                                              cut):
        """A crash can tear *several* trailing records (repeated
        crash/append cycles); warm restart must survive all of them."""
        journal = tmp_path / "serve.journal"
        engine = ServeEngine(deployed, journal_path=journal)
        for _ in range(4):
            engine.classify_batch(rng.random((3, 2)))
        engine.abandon()
        torn_a = '{"seq": 4, "n": 3, "status": "ok", "source": "primary"}'
        torn_b = '{"seq": 5, "n": 3, "status"'
        with open(journal, "a") as handle:
            # Record 4 is cut mid-record at a parametrized byte offset and
            # record 5 is cut as well: two partial trailing records.
            handle.write(torn_a[:cut] + "\n")
            handle.write(torn_b)
        meta, last_seq, answered, _ = read_serve_journal(journal)
        assert meta is not None
        assert last_seq == 3 and answered == 4  # torn records never happened

        restarted = ServeEngine.warm_restart(deployed, journal)
        assert restarted.resumed_requests == 4
        result = restarted.classify_batch(rng.random((3, 2)))
        assert result.ok and result.request_id == 4
        restarted.close()

    def test_torn_then_valid_line_is_corruption(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        journal.write_text('{"seq": 0, "n": 1, "status": "ok"}\n'
                           '{"seq": 1, "n"\n'
                           '{"seq": 2, "n": 1, "status": "ok"}\n')
        with pytest.raises(ValueError, match="corrupt journal line"):
            read_serve_journal(journal)


class TestQuarantineConcurrency:
    def test_concurrent_quarantines_never_collide(self, tmp_path):
        """5 threads quarantining the same path race on suffix slots; the
        O_EXCL claim must give every file a distinct destination."""
        import threading

        path = tmp_path / "bad.json"
        results: list = [None] * 5
        barrier = threading.Barrier(5)

        def attempt(i: int) -> None:
            barrier.wait()
            results[i] = quarantine_artifact(path, reason=f"t{i}")

        for round_no in range(5):
            path.write_text(f"hostile-{round_no}")
            threads = [threading.Thread(target=attempt, args=(i,))
                       for i in range(5)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # Exactly one thread wins the os.replace of the single source
            # file; the others either claim-and-release or lose the race,
            # but nobody may clobber a prior quarantine's bytes.
            winners = [r for r in results if r is not None]
            assert len(winners) == 1
            assert not path.exists()
        quarantined = sorted(tmp_path.glob("bad.json.quarantined*"))
        contents = {p.read_text() for p in quarantined}
        assert contents == {f"hostile-{k}" for k in range(5)}

    def test_sequential_quarantines_take_fresh_slots(self, tmp_path):
        path = tmp_path / "bad.json"
        seen = set()
        for k in range(5):
            path.write_text(f"v{k}")
            target = quarantine_artifact(path)
            assert target is not None and target not in seen
            seen.add(target)
        assert {p.read_text() for p in seen} == {f"v{k}" for k in range(5)}
