"""Tests for hypothesis-space enumeration (repro.core.hypothesis_space)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PointSet, ThresholdClassifier, is_monotone_assignment, solve_passive
from repro.core.hypothesis_space import (
    count_monotone_assignments,
    effective_thresholds,
    enumerate_monotone_assignments,
)


class TestEffectiveThresholds:
    def test_contains_neg_inf_and_distinct_values(self):
        taus = effective_thresholds([2.0, 1.0, 2.0])
        assert taus == [float("-inf"), 1.0, 2.0]

    def test_every_threshold_equivalent_to_a_candidate(self, rng):
        """Eq. (7): any real threshold matches some candidate on P."""
        values = rng.integers(0, 8, size=30).astype(float)
        candidates = effective_thresholds(values)
        for tau in rng.uniform(-2, 10, size=50):
            h = ThresholdClassifier(float(tau))
            pred = h.classify_matrix(values.reshape(-1, 1))
            matched = False
            for c in candidates:
                cpred = ThresholdClassifier(c).classify_matrix(values.reshape(-1, 1))
                if (pred == cpred).all():
                    matched = True
                    break
            assert matched


class TestEnumeration:
    def test_chain_has_n_plus_one(self):
        ps = PointSet([(float(i),) for i in range(5)], [0] * 5)
        assert count_monotone_assignments(ps) == 6

    def test_antichain_has_2_to_n(self):
        ps = PointSet([(float(i), float(-i)) for i in range(4)], [0] * 4)
        assert count_monotone_assignments(ps) == 16

    def test_duplicates_forced_equal(self):
        ps = PointSet([(1.0, 1.0), (1.0, 1.0)], [0, 0])
        assert count_monotone_assignments(ps) == 2  # both-0 or both-1

    def test_empty(self):
        ps = PointSet.from_points([])
        assignments = list(enumerate_monotone_assignments(ps))
        assert len(assignments) == 1

    def test_all_yielded_are_monotone_and_distinct(self, tiny_2d):
        seen = set()
        for assignment in enumerate_monotone_assignments(tiny_2d):
            assert is_monotone_assignment(tiny_2d, assignment)
            seen.add(tuple(assignment.tolist()))
        # Distinctness: the set size equals the yield count.
        assert len(seen) == count_monotone_assignments(tiny_2d)

    def test_size_guard(self):
        ps = PointSet(np.zeros((25, 1)), [0] * 25)
        with pytest.raises(ValueError):
            count_monotone_assignments(ps)

    def test_matches_filtered_power_set(self):
        """Cross-check the pruned enumeration against brute force."""
        from itertools import product

        gen = np.random.default_rng(3)
        for _ in range(10):
            n = int(gen.integers(1, 8))
            ps = PointSet(gen.integers(0, 3, size=(n, 2)).astype(float), [0] * n)
            expected = sum(
                1 for bits in product((0, 1), repeat=n)
                if is_monotone_assignment(ps, np.asarray(bits, dtype=np.int8))
            )
            assert count_monotone_assignments(ps) == expected


class TestAsOracleForPassive:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 9), st.integers(0, 10_000))
    def test_enumeration_confirms_solver_optimum(self, n, seed):
        """Property: min error over all enumerated hypotheses == solver."""
        gen = np.random.default_rng(seed)
        ps = PointSet(gen.integers(0, 4, size=(n, 2)).astype(float),
                      gen.integers(0, 2, size=n),
                      gen.random(n) + 0.1)
        best = min(
            float(ps.weights[assignment != ps.labels].sum())
            for assignment in enumerate_monotone_assignments(ps)
        )
        assert solve_passive(ps).optimal_error == pytest.approx(best)
