"""Tests for workload generators (repro.datasets)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import dominance_width, solve_passive
from repro.datasets import (
    EntityMatchingWorkload,
    generate_entity_matching,
    planted_monotone,
    planted_threshold_1d,
    width_controlled,
)
from repro.datasets.synthetic import adversarial_points


class TestPlantedThreshold1D:
    def test_shape_and_labels(self):
        ps = planted_threshold_1d(100, threshold=0.5, noise=0.0, rng=0)
        assert ps.n == 100 and ps.dim == 1
        assert ((ps.coords[:, 0] > 0.5) == (ps.labels == 1)).all()

    def test_zero_noise_is_monotone(self):
        ps = planted_threshold_1d(300, noise=0.0, rng=1)
        assert ps.is_monotone_labeling()

    def test_noise_rate_approximate(self):
        ps_clean = planted_threshold_1d(5_000, noise=0.0, rng=2)
        ps_noisy = planted_threshold_1d(5_000, noise=0.2, rng=2)
        flipped = int((ps_clean.labels != ps_noisy.labels).sum())
        assert 0.15 * 5_000 < flipped < 0.25 * 5_000

    def test_random_weights(self):
        ps = planted_threshold_1d(50, rng=3, weights="random")
        assert (ps.weights > 0).all()
        assert len(set(np.round(ps.weights, 6))) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            planted_threshold_1d(10, noise=0.6)
        with pytest.raises(ValueError):
            planted_threshold_1d(-1)
        with pytest.raises(ValueError):
            planted_threshold_1d(10, weights="gaussian")

    def test_deterministic_with_seed(self):
        a = planted_threshold_1d(50, noise=0.1, rng=4)
        b = planted_threshold_1d(50, noise=0.1, rng=4)
        assert (a.coords == b.coords).all()
        assert (a.labels == b.labels).all()


class TestPlantedMonotone:
    def test_zero_noise_is_monotone(self):
        for dim in (1, 2, 4):
            ps = planted_monotone(200, dim, noise=0.0, rng=5)
            assert ps.is_monotone_labeling()
            assert solve_passive(ps).optimal_error == 0.0

    def test_noise_bounds_optimum(self):
        ps = planted_monotone(400, 2, noise=0.1, rng=6)
        clean = planted_monotone(400, 2, noise=0.0, rng=6)
        flipped = int((ps.labels != clean.labels).sum())
        # k* is at most the number of flips (reverting them is monotone).
        assert solve_passive(ps).optimal_error <= flipped

    def test_validation(self):
        with pytest.raises(ValueError):
            planted_monotone(10, 0)
        with pytest.raises(ValueError):
            planted_monotone(10, 2, noise=0.7)


class TestWidthControlled:
    @pytest.mark.parametrize("w", [1, 2, 5, 10])
    def test_exact_width(self, w):
        ps = width_controlled(100, w, noise=0.1, rng=7)
        assert dominance_width(ps) == w

    def test_cross_chain_incomparability(self):
        ps = width_controlled(60, 3, rng=8)
        # Recover chains by construction geometry: all pairs from different
        # "bands" (by x offset) must be incomparable.
        weak = ps.weak_dominance_matrix()
        offsets = np.round(ps.coords[:, 0] - ps.coords[:, 1]) / 2
        for i in range(ps.n):
            for j in range(ps.n):
                if offsets[i] != offsets[j] and i != j:
                    assert not weak[i, j]

    def test_zero_noise_monotone(self):
        ps = width_controlled(100, 4, noise=0.0, rng=9)
        assert ps.is_monotone_labeling()

    def test_validation(self):
        with pytest.raises(ValueError):
            width_controlled(3, 5)
        with pytest.raises(ValueError):
            width_controlled(10, 0)
        with pytest.raises(ValueError):
            width_controlled(10, 2, noise=0.9)

    def test_uneven_chain_sizes(self):
        ps = width_controlled(10, 3, rng=10)
        assert ps.n == 10
        assert dominance_width(ps) == 3


class TestStaircase:
    def test_zero_noise_is_monotone(self):
        from repro.datasets import staircase

        ps = staircase(300, steps=4, noise=0.0, rng=20)
        assert ps.is_monotone_labeling()

    def test_beats_single_threshold(self):
        """No axis threshold matches the monotone optimum on a staircase."""
        from repro import ThresholdClassifier, error_count
        from repro.datasets import staircase

        ps = staircase(2_000, steps=5, noise=0.0, rng=21)
        assert solve_passive(ps).optimal_error == 0.0
        best_axis = min(
            error_count(ps, ThresholdClassifier(tau, dim=d))
            for d in (0, 1)
            for tau in np.linspace(0, 1, 21)
        )
        assert best_axis > 0.05 * ps.n

    def test_validation(self):
        from repro.datasets import staircase

        with pytest.raises(ValueError):
            staircase(10, steps=0)
        with pytest.raises(ValueError):
            staircase(10, steps=2, noise=0.7)

    def test_single_step(self):
        from repro.datasets import staircase

        ps = staircase(100, steps=1, rng=22)
        assert ps.is_monotone_labeling()


class TestCorrelatedMonotone:
    def test_width_falls_with_correlation(self):
        from repro.datasets import correlated_monotone

        widths = {}
        for corr in (0.0, 0.95):
            ps = correlated_monotone(400, 2, correlation=corr, rng=23)
            widths[corr] = dominance_width(ps)
        assert widths[0.95] < widths[0.0] / 2

    def test_validation(self):
        from repro.datasets import correlated_monotone

        with pytest.raises(ValueError):
            correlated_monotone(10, 0)
        with pytest.raises(ValueError):
            correlated_monotone(10, 2, correlation=1.5)
        with pytest.raises(ValueError):
            correlated_monotone(10, 2, noise=0.6)

    def test_noise_bounds_optimum(self):
        from repro.datasets import correlated_monotone

        ps = correlated_monotone(500, 3, correlation=0.9, noise=0.05, rng=24)
        assert solve_passive(ps).optimal_error <= 0.1 * ps.n


class TestAdversarialPoints:
    def test_reexport(self):
        ps = adversarial_points(8, "11", 2)
        assert ps.n == 8
        assert ps.labels[3] == 1  # point 4 flipped to 1


class TestEntityMatching:
    def test_workload_structure(self):
        workload = generate_entity_matching(500, dim=3, rng=11)
        assert isinstance(workload, EntityMatchingWorkload)
        assert workload.n == 500
        assert workload.dim == 3
        assert (workload.points.coords >= 0).all()
        assert (workload.points.coords <= 1).all()

    def test_matches_score_higher(self):
        workload = generate_entity_matching(3_000, dim=2, label_noise=0.0, rng=12)
        points = workload.points
        match_mean = points.coords[points.labels == 1].mean()
        nonmatch_mean = points.coords[points.labels == 0].mean()
        assert match_mean > nonmatch_mean + 0.2

    def test_label_noise_creates_conflicts(self):
        noisy = generate_entity_matching(2_000, label_noise=0.1, rng=13)
        assert solve_passive(noisy.points).optimal_error > 0

    def test_oracle_and_hidden_views(self):
        workload = generate_entity_matching(50, rng=14)
        oracle = workload.oracle(budget=10)
        assert oracle.budget == 10
        assert workload.hidden().has_hidden_labels

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_entity_matching(10, match_rate=0.0)
        with pytest.raises(ValueError):
            generate_entity_matching(10, label_noise=0.8)
        with pytest.raises(ValueError):
            generate_entity_matching(10, match_similarity=0.3,
                                     nonmatch_similarity=0.5)
        with pytest.raises(ValueError):
            generate_entity_matching(10, dim=0)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 60), st.integers(1, 6), st.integers(0, 10_000))
def test_width_controlled_always_exact(n, w, seed):
    """Property: the generator's width always equals the requested w."""
    w = min(w, n)
    ps = width_controlled(n, w, noise=0.2, rng=seed)
    assert dominance_width(ps) == w
