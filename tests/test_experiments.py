"""Smoke and correctness tests for the experiment harness (repro.experiments).

Each experiment runs here with deliberately tiny parameters; the full-size
runs live under benchmarks/ and their outcomes in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro._util import format_table
from repro.experiments import run_experiment
from repro.experiments import (
    ablations,
    active_scaling,
    baseline_comparison,
    confidence,
    entity_matching_exp,
    figure1,
    flow_backends,
    lowerbound_exp,
    passive_scaling,
    poset_scaling,
)
from repro.experiments._common import chainwise_optimum
from repro.experiments.runner import EXPERIMENTS, group_rows_by_schema, main


class TestFigure1Experiment:
    def test_every_row_matches_the_paper(self):
        rows = figure1.run()
        assert len(rows) == 9
        assert all(row["match"] for row in rows)


class TestPassiveScaling:
    def test_small_run_all_checks_pass(self):
        rows = passive_scaling.run(ns=(30, 60), ds=(1, 2), seed=1)
        assert len(rows) == 4
        for row in rows:
            assert row["optimality_check"] in ("ok", "n/a")
            assert row["time_s"] >= 0


class TestActiveScaling:
    def test_sweeps_report_guarantee(self):
        rows = active_scaling.run_n_sweep(ns=(500, 1_000), width=2,
                                          epsilon=1.0, trials=1, seed=2)
        assert len(rows) == 2
        for row in rows:
            assert row["max_error_ratio"] <= row["guarantee"] + 1e-9

    def test_eps_sweep(self):
        rows = active_scaling.run_eps_sweep(epsilons=(1.0, 0.5), n=1_000,
                                            width=2, trials=1, seed=3)
        assert rows[0]["probes"] <= rows[1]["probes"]


class TestChainwiseOptimum:
    def test_matches_full_solver_on_width_controlled(self):
        from repro import solve_passive
        from repro.datasets.synthetic import width_controlled

        ps = width_controlled(600, 4, noise=0.15, rng=4)
        assert chainwise_optimum(ps) == \
            pytest.approx(solve_passive(ps).optimal_error)

    def test_requires_labels(self):
        from repro.datasets.synthetic import width_controlled

        ps = width_controlled(20, 2, rng=0).with_hidden_labels()
        with pytest.raises(ValueError):
            chainwise_optimum(ps)


class TestBaselineComparison:
    def test_ordering_claims(self):
        rows = baseline_comparison.run(n=2_000, width=2, epsilon=1.0,
                                       trials=1, seed=5)
        by_method = {row["method"]: row for row in rows}
        assert by_method["probe_all"]["mean_probes"] == 2_000
        assert by_method["probe_all"]["mean_error_ratio"] == pytest.approx(1.0)
        assert by_method["tao2018"]["mean_probes"] < 100
        assert by_method["theorem2"]["max_error_ratio"] <= 2.0 + 1e-9


class TestLowerboundExperiment:
    def test_formulas_match_simulation(self):
        rows = lowerbound_exp.run(n=16)
        assert all(row["cost_match"] for row in rows)
        assert all(row["lb_holds"] for row in rows)

    def test_accuracy_cost_tradeoff_visible(self):
        rows = lowerbound_exp.run(n=32)
        accurate = [r for r in rows if r["accurate(nonopt<=n/3)"]]
        sloppy = [r for r in rows if not r["accurate(nonopt<=n/3)"]]
        assert accurate and sloppy
        assert min(r["totalcost"] for r in accurate) > \
            min(r["totalcost"] for r in sloppy)


class TestPosetScaling:
    def test_small_run(self):
        rows = poset_scaling.run(controlled=((60, 3),), random_ns=(40,), seed=6)
        assert all(row["exact"] for row in rows)


class TestFlowBackends:
    def test_agreement(self):
        rows = flow_backends.run(sizes=(20, 40), passive_ns=(100,), seed=7)
        assert all(row["agree"] for row in rows)


class TestEntityMatching:
    def test_budget_accuracy_rows(self):
        rows = entity_matching_exp.run(n_pairs=600, epsilons=(1.0,), seed=8)
        methods = {row["method"] for row in rows}
        assert "probe_all" in methods and "tao2018" in methods
        probe_all_row = next(r for r in rows if r["method"] == "probe_all")
        assert probe_all_row["error_ratio"] == pytest.approx(1.0)
        assert 0 <= probe_all_row["match_f1"] <= 1

    def test_f1_helper(self):
        from repro import ConstantClassifier, PointSet
        from repro.experiments.entity_matching_exp import match_f1

        ps = PointSet([(0.0,), (1.0,)], [1, 1])
        assert match_f1(ps, ConstantClassifier(1)) == 1.0
        assert match_f1(ps, ConstantClassifier(0)) == 0.0


class TestConfidence:
    def test_small_run_within_delta(self):
        rows = confidence.run(n=3_000, settings=((1.0, 0.2),), runs=8, seed=12)
        assert len(rows) == 1
        row = rows[0]
        assert row["within_delta"]
        assert 0 <= row["empirical_failure_rate"] <= 1
        assert row["worst_ratio"] >= 1.0


class TestRobustness:
    def test_all_models_within_guarantee(self):
        from repro.experiments import robustness

        rows = robustness.run(n=1_500, width=2, epsilon=1.0, rate=0.08,
                              trials=1, seed=13)
        assert {row["noise_model"] for row in rows} == \
            {"uniform", "boundary", "asymmetric"}
        for row in rows:
            assert row["max_error_ratio"] <= row["guarantee"] + 1e-9


class TestRecursionGeometry:
    def test_levels_and_summary(self):
        from repro.experiments import recursion_geometry

        rows = recursion_geometry.run(n=5_000, runs=3, seed=14)
        assert rows[-1]["level"] == "summary"
        level_rows = rows[:-1]
        assert level_rows[0]["mean_population"] == 5_000
        populations = [row["mean_population"] for row in level_rows]
        assert populations == sorted(populations, reverse=True)


class TestWidthProfile:
    def test_profiles_every_generator(self):
        from repro.experiments import width_profile

        rows = width_profile.run(n=300, seed=15)
        assert len(rows) == 8
        for row in rows:
            assert row["width_w"] >= 1
            assert row["height"] >= 1
            # Dilworth x Mirsky: a width-w, height-h poset has <= w*h points.
            assert row["width_w"] * row["height"] >= row["n"]


class TestAblations:
    def test_contending(self):
        rows = ablations.run_contending(ns=(60,), seed=9)
        assert all(row["same_optimum"] for row in rows)

    def test_constants_tradeoff(self):
        rows = ablations.run_constants(constants=(2.0, 8.0), n=4_000, seed=10)
        assert rows[0]["probes"] < rows[1]["probes"]

    def test_decomposition(self):
        rows = ablations.run_decomposition(n=800, width=3, trials=1, seed=11)
        by_method = {row["method"]: row for row in rows}
        assert by_method["exact"]["chains_used"] == 3
        assert by_method["greedy"]["chains_used"] >= 3


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "figure1", "passive_scaling", "active_scaling",
            "baseline_comparison", "lowerbound", "poset_scaling",
            "flow_backends", "entity_matching", "confidence", "robustness",
            "recursion_geometry", "width_profile", "ablations", "chaos",
        }

    def test_run_experiment_by_name(self):
        rows = run_experiment("lowerbound", n=8)
        assert rows

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            run_experiment("nope")

    def test_main_rejects_unknown(self, capsys):
        assert main(["nope"]) == 2

    def test_main_prints_table(self, capsys):
        assert main(["figure1"]) == 0
        assert "dominance width" in capsys.readouterr().out

    def test_group_rows_by_schema(self):
        rows = [{"a": 1}, {"a": 2}, {"b": 3}, {"a": 4}]
        groups = group_rows_by_schema(rows)
        assert [len(g) for g in groups] == [2, 1, 1]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"
