"""Direct verification of the Section 3 comparison function ``f``.

These tests check the *mechanism* of Lemma 9 — the ε-comparison property
and Lemma 13's identity — not just the final classifier's error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LabelOracle, ThresholdClassifier, error_count
from repro.core.active_1d import SigmaErrorFunction, active_classify_1d
from repro.core.hypothesis_space import effective_thresholds
from repro.datasets.synthetic import planted_threshold_1d


@pytest.fixture(scope="module")
def run():
    points = planted_threshold_1d(30_000, noise=0.1, rng=0)
    oracle = LabelOracle(points)
    result = active_classify_1d(points.with_hidden_labels(), oracle,
                                epsilon=0.5, rng=1)
    return points, result


class TestLemma13Identity:
    def test_f_equals_weighted_sigma_error(self, run):
        """f(h^tau) == w-err_Sigma(h^tau) for every effective threshold."""
        points, result = run
        f = SigmaErrorFunction(points.coords[:, 0], result.sigma)
        indices, weights, labels = result.sigma.arrays()
        values = points.coords[indices, 0]
        for tau in [float("-inf"), 0.0, 0.3, 0.55, 0.9, float("inf")]:
            pred = (values > tau).astype(int)
            expected = float(weights[pred != labels].sum())
            assert f(tau) == pytest.approx(expected)

    def test_returned_classifier_minimizes_f(self, run):
        points, result = run
        f = SigmaErrorFunction(points.coords[:, 0], result.sigma)
        taus = effective_thresholds(points.coords[:200, 0])
        assert f(result.classifier.tau) <= min(f(t) for t in taus) + 1e-9
        assert f(result.classifier.tau) == pytest.approx(result.sigma_error)

    def test_vectorized_matches_scalar(self, run):
        points, result = run
        f = SigmaErrorFunction(points.coords[:, 0], result.sigma)
        taus = np.linspace(-0.2, 1.2, 57)
        vector = f.evaluate_many(taus)
        for tau, value in zip(taus, vector):
            assert f(float(tau)) == pytest.approx(float(value))


class TestEpsilonComparisonProperty:
    def test_property_holds_across_random_threshold_pairs(self, run):
        """f(x) <= f(y)  =>  err_P(x) <= (1+eps) err_P(y), eps = 0.5."""
        points, result = run
        f = SigmaErrorFunction(points.coords[:, 0], result.sigma)
        gen = np.random.default_rng(2)
        taus = np.concatenate([gen.uniform(0, 1, 60), [float("-inf")],
                               [float("inf")]])
        true_errors = {
            float(tau): error_count(points, ThresholdClassifier(float(tau)))
            for tau in taus
        }
        f_values = {float(tau): f(float(tau)) for tau in taus}
        violations = 0
        comparisons = 0
        for x in taus:
            for y in taus:
                comparisons += 1
                if f_values[float(x)] <= f_values[float(y)]:
                    if true_errors[float(x)] > 1.5 * true_errors[float(y)] + 1e-9:
                        violations += 1
        # The property holds w.h.p. for every pair; demand near-perfection.
        assert violations <= comparisons * 0.001

    def test_f_tracks_true_error_up_to_additive_band(self, run):
        """Eq. (8)-style: |f - err_P| stays within a small fraction of n."""
        points, result = run
        f = SigmaErrorFunction(points.coords[:, 0], result.sigma)
        gen = np.random.default_rng(3)
        deviations = []
        for tau in gen.uniform(0, 1, 40):
            true_error = error_count(points, ThresholdClassifier(float(tau)))
            deviations.append(abs(f(float(tau)) - true_error))
        # The proof allows eps*n/64 = 234 at eps=0.5, n=30k; practical
        # constants keep typical deviations well inside a 5% band.
        assert np.median(deviations) < 0.02 * points.n
        assert max(deviations) < 0.05 * points.n
