"""Tests for Hopcroft–Karp maximum matching (repro.poset.matching)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.poset.matching import hopcroft_karp, maximum_bipartite_matching


def _matching_is_consistent(result, adjacency, n_right):
    """Structural validity: matched pairs are edges and mutually consistent."""
    for u, v in enumerate(result.left_match):
        if v != -1:
            assert v in adjacency[u]
            assert result.right_match[v] == u
    matched_rights = [v for v in result.left_match if v != -1]
    assert len(matched_rights) == len(set(matched_rights))
    assert result.size == len(matched_rights)


class TestHopcroftKarp:
    def test_empty_graph(self):
        result = hopcroft_karp([], 0)
        assert result.size == 0

    def test_no_edges(self):
        result = hopcroft_karp([[], [], []], 3)
        assert result.size == 0
        assert result.left_match == [-1, -1, -1]

    def test_perfect_matching(self):
        result = hopcroft_karp([[0], [1], [2]], 3)
        assert result.size == 3

    def test_requires_augmenting_path(self):
        # Left 0 -> {0, 1}; left 1 -> {0}.  Greedy could match 0-0 and
        # strand left 1; an augmenting path fixes it.
        result = hopcroft_karp([[0, 1], [0]], 2)
        assert result.size == 2
        assert result.left_match == [1, 0]

    def test_bottleneck_right_vertex(self):
        # Three left vertices all pointing at one right vertex.
        result = hopcroft_karp([[0], [0], [0]], 1)
        assert result.size == 1

    def test_classic_crown(self):
        # K_{3,3} minus a perfect matching still has a perfect matching.
        adjacency = [[1, 2], [0, 2], [0, 1]]
        result = hopcroft_karp(adjacency, 3)
        assert result.size == 3

    def test_invalid_right_vertex_rejected(self):
        with pytest.raises(ValueError):
            hopcroft_karp([[5]], 2)

    def test_pairs_accessor(self):
        result = hopcroft_karp([[0], []], 1)
        assert result.pairs() == [(0, 0)]

    def test_edge_list_wrapper(self):
        result = maximum_bipartite_matching([(0, 1), (1, 0)], 2, 2)
        assert result.size == 2

    def test_edge_list_wrapper_validates(self):
        with pytest.raises(ValueError):
            maximum_bipartite_matching([(3, 0)], 2, 2)

    def test_long_augmenting_chain(self):
        # Path graph forcing an augmenting path of maximal length.
        # left i -> {i, i+1} for i < k, left k-1 -> {k-1}.
        k = 50
        adjacency = [[i, i + 1] for i in range(k - 1)] + [[k - 1]]
        result = hopcroft_karp(adjacency, k)
        assert result.size == k


def _brute_force_matching(adjacency, n_right):
    """Exponential exact matching size for cross-checking."""
    best = 0

    def backtrack(u, used):
        nonlocal best
        if u == len(adjacency):
            best = max(best, len(used))
            return
        # Upper-bound prune.
        if len(used) + (len(adjacency) - u) <= best:
            return
        backtrack(u + 1, used)
        for v in adjacency[u]:
            if v not in used:
                used.add(v)
                backtrack(u + 1, used)
                used.remove(v)

    backtrack(0, set())
    return best


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 7), st.integers(1, 7), st.data())
def test_matches_brute_force(n_left, n_right, data):
    """Property: Hopcroft–Karp size equals brute-force optimal size."""
    adjacency = [
        sorted(data.draw(st.sets(st.integers(0, n_right - 1), max_size=n_right)))
        for _ in range(n_left)
    ]
    result = hopcroft_karp(adjacency, n_right)
    _matching_is_consistent(result, adjacency, n_right)
    assert result.size == _brute_force_matching(adjacency, n_right)


@settings(max_examples=20, deadline=None)
@given(st.integers(5, 40), st.integers(5, 40), st.floats(0.05, 0.5), st.integers(0, 10_000))
def test_matches_networkx(n_left, n_right, density, seed):
    """Property: agrees with networkx's matching on random bipartite graphs."""
    nx = pytest.importorskip("networkx")
    gen = np.random.default_rng(seed)
    adjacency = [
        np.flatnonzero(gen.random(n_right) < density).tolist()
        for _ in range(n_left)
    ]
    result = hopcroft_karp(adjacency, n_right)
    _matching_is_consistent(result, adjacency, n_right)

    graph = nx.Graph()
    graph.add_nodes_from(("L", u) for u in range(n_left))
    graph.add_nodes_from(("R", v) for v in range(n_right))
    for u, neighbors in enumerate(adjacency):
        for v in neighbors:
            graph.add_edge(("L", u), ("R", v))
    nx_matching = nx.bipartite.maximum_matching(
        graph, top_nodes=[("L", u) for u in range(n_left)])
    assert result.size == len(nx_matching) // 2
