"""Fleet-wide chaos certification (repro.serve.chaos.run_chaos_fleet).

The acceptance gate for the serve fleet: a deterministic 100k-query
campaign across 4 models with concurrent corruption, hot-swap, eviction,
kill, and artifact-store-brownout injection must finish with zero
silently wrong answers, zero cross-model blast radius, and at least one
exercised rollback re-pinning the incumbent.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.points import PointSet
from repro.serve import (
    FleetFaultSpec,
    fit_artifact,
    run_chaos_fleet,
    save_artifact,
)

#: The certification fault mix: every injector active at once.
FULL_SPEC = FleetFaultSpec(
    corrupt_rate=0.15,
    delay_rate=0.1,
    evict_rate=0.2,
    kill_rate=0.1,
    swap_rate=0.12,
    bad_swap_rate=0.12,
    storm_rate=0.08,
    seed=3,
)


@pytest.fixture(scope="module")
def fleet_artifacts(tmp_path_factory):
    """Four deployed models of varying size and dimension."""
    tmp = tmp_path_factory.mktemp("fleet-chaos")
    rng = np.random.default_rng(7)
    artifacts = {}
    for i, (n, dim) in enumerate([(60, 1), (60, 2), (80, 2), (60, 3)]):
        coords = rng.random((n, dim))
        labels = (coords.sum(axis=1) > dim * 0.5).astype(int)
        labels[rng.random(n) < 0.1] ^= 1
        artifact = fit_artifact(PointSet(coords, labels), seed=i)
        path = tmp / f"m{i}.json"
        save_artifact(artifact, path)
        artifacts[f"m{i}"] = path
    return artifacts


class TestFleetChaosCertification:
    def test_100k_campaign_all_invariants_hold(
        self, fleet_artifacts, tmp_path
    ):
        workdir = tmp_path / "campaign"
        report = run_chaos_fleet(
            fleet_artifacts,
            queries=100_000,
            batch_size=256,
            spec=FULL_SPEC,
            workdir=workdir,
        )
        assert report.queries >= 100_000
        assert report.models == 4
        # Invariant 1: zero silently wrong answers — every `ok` answer was
        # checked bit-for-bit against the pristine per-model reference.
        assert report.wrong_answers == 0
        # Invariant 2: zero cross-model blast radius — a model with no
        # fault targeting it always answered bit-exact `ok`.
        assert report.blast_events == 0
        # No answer ever fell off the bottom of the degradation ladder.
        assert report.failed == 0
        # The campaign actually exercised every injector...
        assert report.corruptions > 0
        assert report.evictions > 0
        assert report.kills > 0 and report.restarts > 0
        assert report.swaps_injected > 0 and report.promotions > 0
        assert report.bad_swaps_injected > 0
        assert report.delays > 0
        # ...including at least one verification rejection (bad candidate
        # quarantined, incumbent re-pinned)...
        assert report.rejected_swaps >= 1
        # ...and at least one post-promotion rollback.
        assert report.storms > 0
        assert report.rollbacks >= 1
        assert report.ok
        # The rejected candidates are preserved on disk for forensics.
        assert list((workdir / "deploy").glob("*.quarantined*"))
        # Every model answered; per-model rows cover the whole fleet.
        assert sorted(report.per_model) == ["m0", "m1", "m2", "m3"]
        assert all(
            row["queries"] > 0 and row["wrong"] == 0 and row["blast"] == 0
            for row in report.per_model.values()
        )

    def test_campaign_is_deterministic(self, fleet_artifacts):
        first = run_chaos_fleet(
            fleet_artifacts, queries=8_000, batch_size=128, spec=FULL_SPEC
        )
        second = run_chaos_fleet(
            fleet_artifacts, queries=8_000, batch_size=128, spec=FULL_SPEC
        )
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_clean_campaign_is_all_ok(self, fleet_artifacts):
        report = run_chaos_fleet(
            fleet_artifacts, queries=4_000, batch_size=128, spec=None
        )
        assert report.ok
        assert report.wrong_answers == 0
        assert report.blast_events == 0
        assert report.degraded_answers == 0
        assert report.failed == 0
        assert report.corruptions == 0 and report.kills == 0

    def test_requires_at_least_two_models(self, fleet_artifacts):
        (name, path), *_ = fleet_artifacts.items()
        with pytest.raises(ValueError, match=">= 2 models"):
            run_chaos_fleet({name: path}, queries=100)


class TestFleetFaultSpec:
    def test_parse_round_trip(self):
        spec = FleetFaultSpec.parse(
            "corrupt=0.1, evict=0.2, kill=0.05, swap=0.1, "
            "badswap=0.1, storm=0.05, seed=9"
        )
        assert spec == FleetFaultSpec(
            corrupt_rate=0.1,
            evict_rate=0.2,
            kill_rate=0.05,
            swap_rate=0.1,
            bad_swap_rate=0.1,
            storm_rate=0.05,
            seed=9,
        )
        assert spec.active

    def test_parse_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown"):
            FleetFaultSpec.parse("corrupt=0.1, flood=0.5")

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FleetFaultSpec(corrupt_rate=1.5)

    def test_inactive_spec(self):
        assert not FleetFaultSpec().active
