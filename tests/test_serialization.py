"""Tests for classifier serialization (repro.serialization)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConstantClassifier,
    ThresholdClassifier,
    UpsetClassifier,
)
from repro.core.exceptions_variant import ExceptionAugmentedClassifier
from repro.serialization import (
    classifier_from_dict,
    classifier_to_dict,
    load_classifier,
    save_classifier,
)


def _predictions_match(a, b, coords):
    return (a.classify_matrix(coords) == b.classify_matrix(coords)).all()


@pytest.fixture
def probe_coords(rng):
    return rng.random((50, 2))


class TestRoundTrips:
    def test_constant(self, tmp_path):
        for value in (0, 1):
            path = tmp_path / f"c{value}.json"
            save_classifier(ConstantClassifier(value), path)
            loaded = load_classifier(path)
            assert isinstance(loaded, ConstantClassifier)
            assert loaded.value == value

    def test_threshold(self, tmp_path, probe_coords):
        h = ThresholdClassifier(0.37, dim=1)
        path = tmp_path / "t.json"
        save_classifier(h, path)
        loaded = load_classifier(path)
        assert loaded.tau == 0.37 and loaded.dim == 1
        assert _predictions_match(h, loaded, probe_coords)

    def test_threshold_infinities(self, tmp_path):
        for tau in (float("inf"), float("-inf")):
            path = tmp_path / "inf.json"
            save_classifier(ThresholdClassifier(tau), path)
            assert load_classifier(path).tau == tau

    def test_upset(self, tmp_path, probe_coords):
        h = UpsetClassifier([(0.2, 0.8), (0.7, 0.1)])
        path = tmp_path / "u.json"
        save_classifier(h, path)
        loaded = load_classifier(path)
        assert isinstance(loaded, UpsetClassifier)
        assert loaded.num_anchors == 2
        assert _predictions_match(h, loaded, probe_coords)

    def test_empty_upset(self, tmp_path, probe_coords):
        h = UpsetClassifier([], dim=2)
        path = tmp_path / "u0.json"
        save_classifier(h, path)
        loaded = load_classifier(path)
        assert loaded.num_anchors == 0
        assert _predictions_match(h, loaded, probe_coords)

    def test_with_exceptions(self, tmp_path, probe_coords):
        base = ThresholdClassifier(0.5)
        h = ExceptionAugmentedClassifier(base, {(0.25, 0.25): 1, (0.75, 0.75): 0})
        path = tmp_path / "e.json"
        save_classifier(h, path)
        loaded = load_classifier(path)
        assert isinstance(loaded, ExceptionAugmentedClassifier)
        assert loaded.num_exceptions == 2
        coords = np.array([[0.25, 0.25], [0.75, 0.75], [0.9, 0.9]])
        assert (h.classify_matrix(coords) == loaded.classify_matrix(coords)).all()


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            classifier_from_dict({"format_version": 1, "kind": "mystery"})

    def test_wrong_version(self):
        payload = classifier_to_dict(ConstantClassifier(0))
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            classifier_from_dict(payload)

    def test_unserializable_type(self):
        class Weird:
            pass

        with pytest.raises(TypeError):
            classifier_to_dict(Weird())


class TestHardenedBoundary:
    """`load_classifier` is a strict validation boundary: hostile or
    truncated bytes raise ValueError naming the file — never a raw
    TypeError/KeyError traceback — and writes are atomic."""

    def test_unparseable_json_names_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match=str(path)):
            load_classifier(path)

    def test_non_object_document_names_file(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match=str(path)):
            load_classifier(path)

    def test_truncated_file_names_file(self, tmp_path):
        path = tmp_path / "t.json"
        save_classifier(UpsetClassifier([(0.2, 0.8)]), path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(ValueError, match=str(path)):
            load_classifier(path)

    @pytest.mark.parametrize("payload", [
        {"format_version": 1, "kind": "constant"},            # missing value
        {"format_version": 1, "kind": "threshold", "tau": 0.5},  # missing dim
        {"format_version": 1, "kind": "threshold", "tau": {}, "dim": 1},
        {"format_version": 1, "kind": "upset", "anchors": 7, "dim": 2},
        {"format_version": 1, "kind": "upset",
         "anchors": [[0.1], [0.2, 0.3]], "dim": 2},           # ragged
        {"format_version": 1, "kind": "with_exceptions",
         "base": {"format_version": 1, "kind": "constant", "value": 0},
         "exceptions": [{"coords": None, "label": 1}]},
        {"format_version": 1, "kind": "with_exceptions",
         "base": None, "exceptions": []},
    ])
    def test_structural_violations_raise_value_error(self, payload):
        with pytest.raises(ValueError):
            classifier_from_dict(payload)

    def test_byte_mutation_regression(self, tmp_path, rng):
        """Every byte-mutated classifier file either loads or raises a
        clean ValueError — the same contract the fuzzer enforces."""
        from repro.fuzz.generators import mutate_bytes

        source = tmp_path / "source.json"
        save_classifier(
            ExceptionAugmentedClassifier(
                UpsetClassifier([(0.2, 0.8), (0.7, 0.1)]),
                {(0.25, 0.25): 1}),
            source)
        text = source.read_text()
        target = tmp_path / "mutated.json"
        for k in range(64):
            target.write_bytes(mutate_bytes(text, rng, mutations=1 + k % 4))
            try:
                loaded = load_classifier(target)
            except ValueError as exc:
                assert str(target) in str(exc)
            else:
                loaded.classify_matrix(np.zeros((1, 2)))

    def test_atomic_write_leaves_no_partial_file(self, tmp_path, monkeypatch):
        """A crash mid-write must leave the previous file intact."""
        import repro._util as util

        path = tmp_path / "c.json"
        save_classifier(ConstantClassifier(1), path)

        real_replace = util.os.replace

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(util.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            save_classifier(ConstantClassifier(0), path)
        monkeypatch.setattr(util.os, "replace", real_replace)
        assert load_classifier(path).value == 1


class TestTrainedClassifierRoundTrip:
    def test_passive_solution_survives_round_trip(self, tmp_path, rng):
        from repro import solve_passive
        from repro.datasets.synthetic import planted_monotone

        ps = planted_monotone(200, 2, noise=0.1, rng=5)
        result = solve_passive(ps)
        path = tmp_path / "trained.json"
        save_classifier(result.classifier, path)
        loaded = load_classifier(path)
        assert (loaded.classify_set(ps) == result.assignment).all()
