"""Tests for monotone classifiers (repro.core.classifier)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConstantClassifier,
    PointSet,
    ThresholdClassifier,
    UpsetClassifier,
    is_monotone_assignment,
    monotone_extension,
)


class TestConstantClassifier:
    def test_values(self):
        coords = np.array([[0.0], [5.0]])
        assert list(ConstantClassifier(0).classify_matrix(coords)) == [0, 0]
        assert list(ConstantClassifier(1).classify_matrix(coords)) == [1, 1]

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError):
            ConstantClassifier(2)

    def test_equality_and_hash(self):
        assert ConstantClassifier(1) == ConstantClassifier(1)
        assert ConstantClassifier(1) != ConstantClassifier(0)
        assert hash(ConstantClassifier(0)) == hash(ConstantClassifier(0))


class TestThresholdClassifier:
    def test_strict_inequality_semantics(self):
        """Paper eq. (6): h(p) = 1 iff p > tau (strictly)."""
        h = ThresholdClassifier(1.0)
        assert h.classify((1.0,)) == 0
        assert h.classify((1.0000001,)) == 1
        assert h.classify((0.5,)) == 0

    def test_infinite_thresholds(self):
        coords = np.array([[0.0], [1.0]])
        all_one = ThresholdClassifier(float("-inf"))
        all_zero = ThresholdClassifier(float("inf"))
        assert list(all_one.classify_matrix(coords)) == [1, 1]
        assert list(all_zero.classify_matrix(coords)) == [0, 0]

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            ThresholdClassifier(float("nan"))

    def test_dim_selection(self):
        h = ThresholdClassifier(0.5, dim=1)
        assert h.classify((0.0, 1.0)) == 1
        assert h.classify((1.0, 0.0)) == 0

    def test_dim_out_of_range(self):
        h = ThresholdClassifier(0.5, dim=3)
        with pytest.raises(ValueError):
            h.classify((0.0, 1.0))

    def test_callable_protocol(self):
        assert ThresholdClassifier(0.0)((1.0,)) == 1

    @settings(max_examples=50, deadline=None)
    @given(st.floats(-10, 10), st.floats(-10, 10), st.floats(-10, 10))
    def test_monotone_property(self, tau, x, y):
        """Property: x >= y implies h(x) >= h(y) for every threshold."""
        h = ThresholdClassifier(tau)
        lo, hi = min(x, y), max(x, y)
        assert h.classify((hi,)) >= h.classify((lo,))


class TestUpsetClassifier:
    def test_empty_upset_is_all_zero(self):
        h = UpsetClassifier([], dim=2)
        assert h.classify((100.0, 100.0)) == 0
        assert h.num_anchors == 0

    def test_requires_dim_without_anchors(self):
        with pytest.raises(ValueError):
            UpsetClassifier([])

    def test_single_anchor(self):
        h = UpsetClassifier([(1.0, 1.0)])
        assert h.classify((1.0, 1.0)) == 1  # weak dominance includes equality
        assert h.classify((2.0, 1.0)) == 1
        assert h.classify((0.9, 5.0)) == 0

    def test_redundant_anchor_pruned(self):
        h = UpsetClassifier([(1.0, 1.0), (2.0, 2.0)])
        assert h.num_anchors == 1  # (2,2) dominates (1,1) => redundant

    def test_duplicate_anchors_collapsed(self):
        h = UpsetClassifier([(1.0, 1.0), (1.0, 1.0)])
        assert h.num_anchors == 1

    def test_antichain_anchors_kept(self):
        h = UpsetClassifier([(2.0, 0.0), (0.0, 2.0)])
        assert h.num_anchors == 2
        assert h.classify((2.0, 0.0)) == 1
        assert h.classify((0.0, 2.0)) == 1
        assert h.classify((1.0, 1.0)) == 0

    def test_dimension_mismatch_raises(self):
        h = UpsetClassifier([(1.0, 1.0)])
        with pytest.raises(ValueError):
            h.classify((1.0, 1.0, 1.0))

    def test_from_positive_points(self, tiny_2d):
        h = UpsetClassifier.from_positive_points(tiny_2d, [0, 0, 0, 1])
        assert h.classify((2.0, 2.0)) == 1
        assert h.classify((0.0, 0.0)) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)),
                    min_size=1, max_size=8),
           st.tuples(st.floats(0, 1), st.floats(0, 1)),
           st.tuples(st.floats(0, 0.5), st.floats(0, 0.5)))
    def test_monotone_property(self, anchors, base, delta):
        """Property: adding a non-negative delta never decreases h."""
        h = UpsetClassifier(anchors)
        above = (base[0] + delta[0], base[1] + delta[1])
        assert h.classify(above) >= h.classify(base)


class TestMonotoneAssignment:
    def test_valid_assignment(self, tiny_2d):
        assert is_monotone_assignment(tiny_2d, [0, 0, 0, 1])
        assert is_monotone_assignment(tiny_2d, [0, 0, 0, 0])
        assert is_monotone_assignment(tiny_2d, [1, 1, 1, 1])

    def test_invalid_assignment(self, tiny_2d):
        # (1,1) assigned 0 while it dominates (0,0) assigned 1.
        assert not is_monotone_assignment(tiny_2d, [1, 0, 0, 1])

    def test_duplicates_must_agree(self):
        ps = PointSet([(1.0, 1.0), (1.0, 1.0)], [0, 1])
        assert not is_monotone_assignment(ps, [0, 1])
        assert not is_monotone_assignment(ps, [1, 0])
        assert is_monotone_assignment(ps, [1, 1])

    def test_wrong_length_raises(self, tiny_2d):
        with pytest.raises(ValueError):
            is_monotone_assignment(tiny_2d, [0, 1])

    def test_extension_agrees_on_input(self, tiny_2d):
        assignment = [0, 0, 0, 1]
        h = monotone_extension(tiny_2d, assignment)
        assert list(h.classify_set(tiny_2d)) == assignment

    def test_extension_rejects_non_monotone(self, tiny_2d):
        with pytest.raises(ValueError):
            monotone_extension(tiny_2d, [1, 0, 0, 1])


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_extension_always_agrees_with_monotone_assignment(data):
    """Property: the upset extension reproduces any monotone assignment."""
    rows = data.draw(st.lists(
        st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
        min_size=1, max_size=12))
    ps = PointSet(rows, [0] * len(rows))
    # Build a monotone assignment from a random upset threshold on the sum.
    cut = data.draw(st.floats(0, 2))
    assignment = [1 if sum(row) >= cut else 0 for row in rows]
    # A sum-threshold is NOT always monotone w.r.t. dominance ties... it is:
    # dominance implies sum >=, so this assignment is monotone.
    assert is_monotone_assignment(ps, assignment)
    h = monotone_extension(ps, assignment)
    assert list(h.classify_set(ps)) == assignment
