"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.io import load_csv


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0


class TestGenerate:
    def test_generate_monotone_csv(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        code = main(["generate", str(out), "--kind", "monotone",
                     "--n", "50", "--dim", "2", "--seed", "1"])
        assert code == 0
        points = load_csv(out)
        assert points.n == 50 and points.dim == 2

    def test_generate_width_json(self, tmp_path):
        out = tmp_path / "data.json"
        code = main(["generate", str(out), "--kind", "width",
                     "--n", "40", "--width", "4"])
        assert code == 0
        from repro import dominance_width
        from repro.io import load_json

        assert dominance_width(load_json(out)) == 4

    def test_generate_entity(self, tmp_path):
        out = tmp_path / "pairs.csv"
        assert main(["generate", str(out), "--kind", "entity", "--n", "30"]) == 0
        assert load_csv(out).n == 30


class TestSolveCommands:
    @pytest.fixture
    def data_file(self, tmp_path):
        out = tmp_path / "d.csv"
        main(["generate", str(out), "--kind", "threshold1d",
              "--n", "200", "--noise", "0.1", "--seed", "3"])
        return out

    def test_passive(self, data_file, capsys):
        assert main(["passive", str(data_file)]) == 0
        out = capsys.readouterr().out
        assert "optimal_weighted_error" in out

    def test_passive_push_relabel(self, data_file, capsys):
        assert main(["passive", str(data_file), "--backend", "push_relabel"]) == 0

    def test_active(self, data_file, capsys):
        assert main(["active", str(data_file), "--epsilon", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "probes" in out and "ratio" in out

    def test_width(self, data_file, capsys):
        assert main(["width", str(data_file)]) == 0
        assert "width_w" in capsys.readouterr().out


class TestAuditCommand:
    def test_audit_passes_on_valid_data(self, tmp_path, capsys):
        out = tmp_path / "d.csv"
        main(["generate", str(out), "--kind", "monotone", "--n", "80",
              "--noise", "0.1", "--seed", "5"])
        assert main(["audit", str(out)]) == 0
        output = capsys.readouterr().out
        assert "pass" in output
        assert "FAIL" not in output
        assert "matching lower bound" in output


class TestRepairCommand:
    def test_repair_reports_and_writes(self, tmp_path, capsys):
        src = tmp_path / "dirty.csv"
        dst = tmp_path / "clean.csv"
        main(["generate", str(src), "--kind", "monotone", "--n", "80",
              "--noise", "0.2", "--seed", "8"])
        assert main(["repair", str(src), str(dst)]) == 0
        out = capsys.readouterr().out
        assert "consistent_after" in out and "True" in out
        from repro.io import load_csv

        assert load_csv(dst).is_monotone_labeling()


class TestVizCommand:
    def test_renders_scatter(self, tmp_path, capsys):
        out = tmp_path / "d.csv"
        main(["generate", str(out), "--kind", "width", "--n", "60",
              "--width", "3", "--seed", "6"])
        assert main(["viz", str(out)]) == 0
        output = capsys.readouterr().out
        assert "label 0/1" in output

    def test_renders_solved_region(self, tmp_path, capsys):
        out = tmp_path / "d.csv"
        main(["generate", str(out), "--kind", "monotone", "--n", "60",
              "--dim", "2", "--seed", "6"])
        assert main(["viz", str(out), "--solve", "--width", "30",
                     "--height", "12"]) == 0
        output = capsys.readouterr().out
        assert "#" in output and "optimal weighted error" in output


class TestErrorHandling:
    def test_missing_input_exits_cleanly(self, tmp_path, capsys):
        code = main(["passive", str(tmp_path / "nope.csv")])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_missing_input_every_reading_command(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.csv")
        for argv in (["passive", missing], ["active", missing],
                     ["width", missing], ["audit", missing],
                     ["repair", missing], ["viz", missing]):
            assert main(argv) == 2, argv
            assert capsys.readouterr().err.startswith("error:")

    def test_malformed_input_exits_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("x,y,label\n1,2\n")
        assert main(["passive", str(bad)]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "expected columns" in captured.err


class TestMetricsFlags:
    @pytest.fixture
    def data_file(self, tmp_path):
        out = tmp_path / "d.csv"
        main(["generate", str(out), "--kind", "width", "--n", "120",
              "--width", "3", "--seed", "2"])
        return out

    def test_metrics_prints_report(self, data_file, capsys):
        assert main(["passive", str(data_file), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "passive/min_cut" in out
        assert "flow.dinic.calls" in out

    def test_metrics_out_writes_json(self, data_file, tmp_path, capsys):
        import json

        metrics_file = tmp_path / "m.json"
        assert main(["active", str(data_file), "--epsilon", "0.8",
                     "--seed", "4", "--metrics-out", str(metrics_file)]) == 0
        doc = json.loads(metrics_file.read_text())
        assert doc["counters"]["oracle.probes"] > 0
        assert doc["gauges"]["active.chain_width"] == 3
        assert doc["gauges"]["active.recursion_depth"] >= 1
        assert "active/chain_decompose" in doc["spans"]
        # Probe count in the document equals the table's probe column.
        table = capsys.readouterr().out
        assert str(doc["counters"]["oracle.probes"]) in table

    def test_metrics_out_writes_csv(self, data_file, tmp_path):
        metrics_file = tmp_path / "m.csv"
        assert main(["width", str(data_file),
                     "--metrics-out", str(metrics_file)]) == 0
        text = metrics_file.read_text()
        assert text.startswith("kind,name,field,value")
        assert "gauge,poset.num_chains,value,3" in text

    def test_no_flags_no_metrics_output(self, data_file, capsys):
        assert main(["passive", str(data_file)]) == 0
        out = capsys.readouterr().out
        assert "flow.dinic" not in out


class TestExperimentCommand:
    def test_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "lowerbound" in out

    def test_run_figure1(self, capsys):
        assert main(["experiment", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "dominance width w" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "nope"]) == 2


class TestMalformedInputs:
    """User mistakes are one-line exit-2 errors, not tracebacks."""

    def test_missing_file_exits_2(self, capsys):
        assert main(["passive", "/no/such/file.csv"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1

    def test_malformed_csv_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("x0,label,weight\nfoo,0,1.0\n")
        assert main(["passive", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "bad.csv" in err

    def test_truncated_json_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "trunc.json"
        bad.write_text('{"dim": 2, "coords": [[0.0, 1.')
        assert main(["audit", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1

    def test_binary_garbage_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "noise.json"
        bad.write_bytes(bytes(range(256)))
        assert main(["width", str(bad)]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestFuzzCommand:
    def test_small_clean_campaign(self, capsys):
        assert main(["fuzz", "--runs", "9", "--seed", "11",
                     "--size", "12"]) == 0
        out = capsys.readouterr().out
        assert "disagreements" in out and "ok" in out

    def test_family_restriction_and_corpus(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        assert main(["fuzz", "--runs", "2", "--seed", "4", "--size", "10",
                     "--family", "chain", "--corpus", str(corpus)]) == 0
        assert "disagreements" in capsys.readouterr().out

    def test_mutant_self_test_detects_and_exits_0(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        assert main(["fuzz", "--runs", "4", "--seed", "3", "--size", "24",
                     "--family", "duplicates", "--corpus", str(corpus),
                     "--mutant", "hasse_index_tie_break"]) == 0
        out = capsys.readouterr().out
        assert "detected" in out
        assert list(corpus.glob("repro-*.json"))

    def test_undetected_mutant_exits_1(self, capsys):
        # One antichain instance cannot trigger the tie-break mutant, so
        # the self-test must report failure.
        assert main(["fuzz", "--runs", "1", "--seed", "0", "--size", "6",
                     "--family", "antichain",
                     "--mutant", "hasse_index_tie_break"]) == 1
        assert "NOT detected" in capsys.readouterr().err

    def test_replay_clean_corpus_exits_0(self, capsys):
        from pathlib import Path

        corpus = Path(__file__).parent / "corpus"
        assert main(["fuzz", "--replay", str(corpus)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_unknown_family_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--family", "nope"])
