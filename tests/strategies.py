"""Shared Hypothesis strategies for property-based tests.

Centralizes the instance generators that several test modules (and the
fuzz self-tests) need: labeled point sets of bounded size/dimension and
small capacitated flow networks.  Keeping them here means a strategy
tweak (say, widening the weight range) immediately propagates to every
property test instead of drifting per-file.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from hypothesis import strategies as st

from repro import PointSet
from repro.flow import RESIDUAL_EPS, FlowNetwork

__all__ = ["point_sets", "flow_networks", "boundary_flow_networks"]


@st.composite
def point_sets(draw, max_n: int = 16, max_dim: int = 3,
               weighted: bool = True) -> PointSet:
    """A labeled :class:`~repro.PointSet` on a small integer grid.

    Integer coordinates keep dominance decisions exact (no float-ordering
    surprises) while still producing duplicates, chains and antichains;
    weights are bounded well inside the float64 conditioning guard.
    """
    n = draw(st.integers(1, max_n))
    dim = draw(st.integers(1, max_dim))
    coords = draw(st.lists(
        st.tuples(*[st.integers(0, 4) for _ in range(dim)]),
        min_size=n, max_size=n))
    labels = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    if weighted:
        weights = draw(st.lists(
            st.floats(0.01, 100.0, allow_nan=False, allow_infinity=False),
            min_size=n, max_size=n))
    else:
        weights = [1.0] * n
    return PointSet(np.asarray(coords, dtype=float).reshape(n, dim),
                    labels, weights)


@st.composite
def flow_networks(draw, max_nodes: int = 10, max_edges: int = 25
                  ) -> Tuple[FlowNetwork, int, int]:
    """A small capacitated digraph plus a (source, sink) pair.

    Capacities mix zeros, ties and a large-but-finite value so residual
    bookkeeping, tie-breaking and saturation paths all get exercised.
    """
    n = draw(st.integers(2, max_nodes))
    network = FlowNetwork(n)
    edges: List[Tuple[int, int]] = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=max_edges))
    for u, v in edges:
        if u == v:
            continue
        capacity = draw(st.sampled_from([0.0, 0.5, 1.0, 2.0, 3.0, 1e6]))
        network.add_edge(u, v, capacity)
    return network, 0, n - 1


#: Capacities straddling the shared residual tolerance: exactly at the
#: epsilon boundary, one ulp to either side, sub-epsilon, and a couple of
#: ordinary values so boundary arcs interact with real flow.
_BOUNDARY_CAPACITIES = [
    0.0,
    RESIDUAL_EPS,
    float(np.nextafter(RESIDUAL_EPS, 0.0)),
    float(np.nextafter(RESIDUAL_EPS, 1.0)),
    RESIDUAL_EPS / 2,
    2 * RESIDUAL_EPS,
    1e-9,
    1.0,
]


@st.composite
def boundary_flow_networks(draw, max_nodes: int = 8, max_edges: int = 20
                           ) -> Tuple[FlowNetwork, int, int]:
    """Networks whose capacities sit at the ``RESIDUAL_EPS`` boundary.

    Regression strategy for the epsilon-boundary unification: every
    backend must make the *same* admissibility decision on residuals at
    exactly ``RESIDUAL_EPS`` (historically capacity-scaling's exactness
    pass admitted them while the other backends rejected them).
    """
    n = draw(st.integers(2, max_nodes))
    network = FlowNetwork(n)
    edges: List[Tuple[int, int]] = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=max_edges))
    for u, v in edges:
        if u == v:
            continue
        network.add_edge(u, v, draw(st.sampled_from(_BOUNDARY_CAPACITIES)))
    return network, 0, n - 1
