"""Tests for the noise models (repro.datasets.noise)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import solve_passive
from repro.datasets.noise import (
    NOISE_MODELS,
    adversarial_pairs,
    asymmetric_flip,
    boundary_concentrated_flip,
    uniform_flip,
)
from repro.datasets.synthetic import planted_monotone, width_controlled


@pytest.fixture
def clean():
    return planted_monotone(500, 2, noise=0.0, rng=0)


class TestUniformFlip:
    def test_rate_zero_is_identity(self, clean):
        noisy = uniform_flip(clean, 0.0, rng=1)
        assert (noisy.labels == clean.labels).all()

    def test_flip_rate_approximate(self, clean):
        noisy = uniform_flip(clean, 0.2, rng=2)
        rate = (noisy.labels != clean.labels).mean()
        assert 0.14 < rate < 0.26

    def test_coordinates_untouched(self, clean):
        noisy = uniform_flip(clean, 0.3, rng=3)
        assert noisy.coords is clean.coords or (noisy.coords == clean.coords).all()

    def test_validation(self, clean):
        with pytest.raises(ValueError):
            uniform_flip(clean, 0.5)


class TestBoundaryConcentratedFlip:
    def test_total_rate_comparable_to_uniform(self, clean):
        noisy = boundary_concentrated_flip(clean, 0.1, rng=4)
        rate = (noisy.labels != clean.labels).mean()
        assert 0.04 < rate < 0.2

    def test_flips_concentrate_near_boundary(self, clean):
        noisy = boundary_concentrated_flip(clean, 0.1, rng=5,
                                           concentration=6.0)
        flipped = noisy.labels != clean.labels
        if flipped.sum() >= 10:
            sums = clean.coords.sum(axis=1)
            ones = sums[clean.labels == 1]
            zeros = sums[clean.labels == 0]
            margins = np.array([
                np.abs((zeros if clean.labels[i] == 1 else ones) - sums[i]).min()
                for i in range(clean.n)
            ])
            # Flipped points sit closer to the boundary on average.
            assert margins[flipped].mean() < margins[~flipped].mean()

    def test_single_class_falls_back(self):
        from repro import PointSet

        ps = PointSet([(0.0, 0.0), (1.0, 1.0)], [1, 1])
        noisy = boundary_concentrated_flip(ps, 0.4, rng=6)
        assert noisy.n == 2  # no crash; uniform fallback

    def test_validation(self, clean):
        with pytest.raises(ValueError):
            boundary_concentrated_flip(clean, 0.6)
        with pytest.raises(ValueError):
            boundary_concentrated_flip(clean, 0.1, concentration=0.0)


class TestAsymmetricFlip:
    def test_directional_rates(self, clean):
        noisy = asymmetric_flip(clean, 0.0, 0.4, rng=7)
        flipped = noisy.labels != clean.labels
        # Only label-1 points flip.
        assert not flipped[clean.labels == 0].any()
        assert flipped[clean.labels == 1].mean() > 0.25

    def test_validation(self, clean):
        with pytest.raises(ValueError):
            asymmetric_flip(clean, 0.6, 0.1)


class TestAdversarialPairs:
    def test_each_flip_costs_the_optimum(self):
        clean = width_controlled(200, 2, noise=0.0, rng=8)
        assert solve_passive(clean).optimal_error == 0.0
        for budget in (0, 3, 8):
            noisy = adversarial_pairs(clean, budget, rng=9)
            flips = int((noisy.labels != clean.labels).sum())
            assert flips <= budget
            # Vertex-disjoint conflicting pairs: k* equals the flip count.
            assert solve_passive(noisy).optimal_error == flips

    def test_validation(self, clean):
        with pytest.raises(ValueError):
            adversarial_pairs(clean, -1)


class TestRegistry:
    def test_models_registered(self):
        assert set(NOISE_MODELS) == {"uniform", "boundary", "asymmetric"}

    def test_all_models_runnable(self, clean):
        for name, transform in NOISE_MODELS.items():
            noisy = transform(clean, 0.1, rng=10)
            assert noisy.n == clean.n, name
