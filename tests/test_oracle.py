"""Tests for the probing oracle (repro.core.oracle)."""

from __future__ import annotations

import pytest

from repro import HIDDEN, LabelOracle, PointSet, ProbeBudgetExceeded


@pytest.fixture
def truth() -> PointSet:
    return PointSet([(float(i),) for i in range(6)], [0, 0, 1, 0, 1, 1])


class TestProbing:
    def test_probe_returns_label(self, truth):
        oracle = LabelOracle(truth)
        assert oracle.probe(2) == 1
        assert oracle.probe(0) == 0

    def test_cost_counts_distinct_points(self, truth):
        oracle = LabelOracle(truth)
        oracle.probe(1)
        oracle.probe(1)
        oracle.probe(1)
        assert oracle.cost == 1
        assert oracle.total_requests == 3

    def test_probe_many(self, truth):
        oracle = LabelOracle(truth)
        labels = oracle.probe_many([0, 1, 2])
        assert labels == [0, 0, 1]
        assert oracle.cost == 3

    def test_index_bounds(self, truth):
        oracle = LabelOracle(truth)
        with pytest.raises(IndexError):
            oracle.probe(6)
        with pytest.raises(IndexError):
            oracle.probe(-1)

    def test_requires_fully_labeled_ground_truth(self, truth):
        with pytest.raises(ValueError):
            LabelOracle(truth.with_hidden_labels())

    def test_peek_never_charges(self, truth):
        oracle = LabelOracle(truth)
        assert oracle.peek(3) is None
        oracle.probe(3)
        assert oracle.peek(3) == 0
        assert oracle.cost == 1


class TestBudget:
    def test_budget_enforced_on_distinct_points(self, truth):
        oracle = LabelOracle(truth, budget=2)
        oracle.probe(0)
        oracle.probe(0)  # repeat: free
        oracle.probe(1)
        with pytest.raises(ProbeBudgetExceeded):
            oracle.probe(2)

    def test_remaining_budget(self, truth):
        oracle = LabelOracle(truth, budget=3)
        assert oracle.remaining_budget() == 3
        oracle.probe(0)
        assert oracle.remaining_budget() == 2
        assert LabelOracle(truth).remaining_budget() is None

    def test_exhaustion_raises_exactly_at_boundary(self, truth):
        """Probe #budget succeeds; probe #budget+1 of a NEW point raises."""
        oracle = LabelOracle(truth, budget=3)
        oracle.probe(0)
        oracle.probe(1)
        oracle.probe(2)  # exactly at the budget: still allowed
        assert oracle.cost == 3
        assert oracle.remaining_budget() == 0
        with pytest.raises(ProbeBudgetExceeded):
            oracle.probe(3)
        # The failed attempt charged nothing and revealed nothing.
        assert oracle.cost == 3
        assert oracle.peek(3) is None

    def test_repeats_free_even_at_zero_remaining(self, truth):
        oracle = LabelOracle(truth, budget=1)
        first = oracle.probe(4)
        assert oracle.remaining_budget() == 0
        assert oracle.probe(4) == first  # repeat never raises
        assert oracle.cost == 1
        assert oracle.total_requests == 2

    def test_probe_many_respects_budget_mid_iteration(self, truth):
        """probe_many stops at the offending probe; earlier charges stand."""
        oracle = LabelOracle(truth, budget=2)
        with pytest.raises(ProbeBudgetExceeded):
            oracle.probe_many([0, 1, 2, 3])
        assert oracle.cost == 2
        assert oracle.revealed_indices == [0, 1]
        # Repeats of already-revealed points still succeed afterwards.
        assert oracle.probe_many([0, 1]) == [0, 0]
        assert oracle.cost == 2

    def test_zero_budget_rejects_first_probe(self, truth):
        oracle = LabelOracle(truth, budget=0)
        with pytest.raises(ProbeBudgetExceeded):
            oracle.probe(0)
        assert oracle.cost == 0

    def test_probes_used_aliases_cost(self, truth):
        oracle = LabelOracle(truth)
        assert oracle.probes_used == 0
        oracle.probe_many([0, 1, 1, 2])
        assert oracle.probes_used == oracle.cost == 3


class TestAccounting:
    def test_revealed_labels_vector(self, truth):
        oracle = LabelOracle(truth)
        oracle.probe(2)
        oracle.probe(5)
        revealed = oracle.revealed_labels(truth.n)
        assert revealed[2] == 1 and revealed[5] == 1
        assert all(revealed[i] == HIDDEN for i in (0, 1, 3, 4))

    def test_log_keeps_repeats(self, truth):
        oracle = LabelOracle(truth)
        oracle.probe(1)
        oracle.probe(1)
        assert oracle.log == [1, 1]

    def test_reset(self, truth):
        oracle = LabelOracle(truth)
        oracle.probe(0)
        oracle.reset()
        assert oracle.cost == 0
        assert oracle.log == []

    def test_repr(self, truth):
        oracle = LabelOracle(truth, budget=5)
        assert "budget=5" in repr(oracle)
