"""Tests for the probing oracle (repro.core.oracle)."""

from __future__ import annotations

import pytest

from repro import HIDDEN, LabelOracle, PointSet, ProbeBudgetExceeded


@pytest.fixture
def truth() -> PointSet:
    return PointSet([(float(i),) for i in range(6)], [0, 0, 1, 0, 1, 1])


class TestProbing:
    def test_probe_returns_label(self, truth):
        oracle = LabelOracle(truth)
        assert oracle.probe(2) == 1
        assert oracle.probe(0) == 0

    def test_cost_counts_distinct_points(self, truth):
        oracle = LabelOracle(truth)
        oracle.probe(1)
        oracle.probe(1)
        oracle.probe(1)
        assert oracle.cost == 1
        assert oracle.total_requests == 3

    def test_probe_many(self, truth):
        oracle = LabelOracle(truth)
        labels = oracle.probe_many([0, 1, 2])
        assert labels == [0, 0, 1]
        assert oracle.cost == 3

    def test_index_bounds(self, truth):
        oracle = LabelOracle(truth)
        with pytest.raises(IndexError):
            oracle.probe(6)
        with pytest.raises(IndexError):
            oracle.probe(-1)

    def test_requires_fully_labeled_ground_truth(self, truth):
        with pytest.raises(ValueError):
            LabelOracle(truth.with_hidden_labels())

    def test_peek_never_charges(self, truth):
        oracle = LabelOracle(truth)
        assert oracle.peek(3) is None
        oracle.probe(3)
        assert oracle.peek(3) == 0
        assert oracle.cost == 1


class TestBudget:
    def test_budget_enforced_on_distinct_points(self, truth):
        oracle = LabelOracle(truth, budget=2)
        oracle.probe(0)
        oracle.probe(0)  # repeat: free
        oracle.probe(1)
        with pytest.raises(ProbeBudgetExceeded):
            oracle.probe(2)

    def test_remaining_budget(self, truth):
        oracle = LabelOracle(truth, budget=3)
        assert oracle.remaining_budget() == 3
        oracle.probe(0)
        assert oracle.remaining_budget() == 2
        assert LabelOracle(truth).remaining_budget() is None


class TestAccounting:
    def test_revealed_labels_vector(self, truth):
        oracle = LabelOracle(truth)
        oracle.probe(2)
        oracle.probe(5)
        revealed = oracle.revealed_labels(truth.n)
        assert revealed[2] == 1 and revealed[5] == 1
        assert all(revealed[i] == HIDDEN for i in (0, 1, 3, 4))

    def test_log_keeps_repeats(self, truth):
        oracle = LabelOracle(truth)
        oracle.probe(1)
        oracle.probe(1)
        assert oracle.log == [1, 1]

    def test_reset(self, truth):
        oracle = LabelOracle(truth)
        oracle.probe(0)
        oracle.reset()
        assert oracle.cost == 0
        assert oracle.log == []

    def test_repr(self, truth):
        oracle = LabelOracle(truth, budget=5)
        assert "budget=5" in repr(oracle)
