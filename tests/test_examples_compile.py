"""The example scripts must at least parse and import-check.

Full example runs take minutes (they are demos, not tests); compiling
them catches syntax rot and the most common API drift (renamed imports)
cheaply on every test run.
"""

from __future__ import annotations

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLE_FILES) >= 8


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every `from repro...` / `import repro...` name must exist."""
    import importlib

    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module \
                and node.module.startswith("repro"):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), \
                    f"{path.name}: {node.module}.{alias.name} missing"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_has_docstring_and_main(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
    names = {node.name for node in ast.walk(tree)
             if isinstance(node, ast.FunctionDef)}
    assert "main" in names, f"{path.name} lacks a main() entry point"
