"""Tests for the multi-dimensional active algorithm (repro.core.active)."""

from __future__ import annotations

import pytest

from repro import (
    LabelOracle,
    active_classify,
    error_count,
    solve_passive,
)
from repro.datasets.synthetic import planted_monotone, width_controlled
from repro.experiments._common import chainwise_optimum


class TestValidation:
    def test_rejects_empty(self):
        from repro import PointSet

        ps = PointSet([(0.0, 0.0)], [0])
        oracle = LabelOracle(ps)
        with pytest.raises(ValueError):
            active_classify(PointSet.from_points([]), oracle, epsilon=0.5)

    def test_rejects_bad_epsilon(self, tiny_2d):
        oracle = LabelOracle(tiny_2d)
        with pytest.raises(ValueError):
            active_classify(tiny_2d.with_hidden_labels(), oracle, epsilon=0.0)

    def test_rejects_bad_delta(self, tiny_2d):
        oracle = LabelOracle(tiny_2d)
        with pytest.raises(ValueError):
            active_classify(tiny_2d.with_hidden_labels(), oracle,
                            epsilon=0.5, delta=1.5)

    def test_rejects_bad_decomposition(self, tiny_2d):
        oracle = LabelOracle(tiny_2d)
        with pytest.raises(ValueError):
            active_classify(tiny_2d.with_hidden_labels(), oracle,
                            epsilon=0.5, decomposition="bogus")


class TestSmallInputs:
    def test_tiny_input_solved_exactly(self, tiny_2d):
        oracle = LabelOracle(tiny_2d)
        result = active_classify(tiny_2d.with_hidden_labels(), oracle,
                                 epsilon=0.5, rng=0)
        # Small inputs are fully probed, so the answer is exactly optimal.
        assert error_count(tiny_2d, result.classifier) == 1

    def test_figure1_input(self):
        from repro.datasets.figures import figure1_point_set

        ps = figure1_point_set()
        oracle = LabelOracle(ps)
        result = active_classify(ps.with_hidden_labels(), oracle,
                                 epsilon=0.5, rng=1)
        assert result.num_chains == 6
        assert error_count(ps, result.classifier) == 3

    def test_monotone_input_zero_error(self, monotone_2d):
        oracle = LabelOracle(monotone_2d)
        result = active_classify(monotone_2d.with_hidden_labels(), oracle,
                                 epsilon=1.0, rng=2)
        assert error_count(monotone_2d, result.classifier) == 0


class TestGuarantees:
    def test_sublinear_probing_small_width(self):
        n, w = 40_000, 4
        ps = width_controlled(n, w, noise=0.05, rng=3)
        oracle = LabelOracle(ps)
        result = active_classify(ps.with_hidden_labels(), oracle,
                                 epsilon=1.0, rng=4)
        assert result.num_chains == w
        assert result.probing_cost < n // 4
        assert result.probing_cost == oracle.cost

    def test_error_within_guarantee(self):
        n, w, eps = 20_000, 4, 0.5
        ps = width_controlled(n, w, noise=0.08, rng=5)
        optimum = chainwise_optimum(ps)
        failures = 0
        for seed in range(5):
            oracle = LabelOracle(ps)
            result = active_classify(ps.with_hidden_labels(), oracle,
                                     epsilon=eps, rng=seed)
            err = error_count(ps, result.classifier)
            if err > (1 + eps) * optimum:
                failures += 1
        assert failures == 0

    def test_probing_scales_with_width(self):
        n = 24_000
        costs = {}
        for w in (2, 8):
            ps = width_controlled(n, w, noise=0.05, rng=6)
            oracle = LabelOracle(ps)
            result = active_classify(ps.with_hidden_labels(), oracle,
                                     epsilon=1.0, rng=7)
            costs[w] = result.probing_cost
        assert costs[8] > 2 * costs[2]

    def test_sigma_points_consistent(self):
        ps = width_controlled(4_000, 4, noise=0.1, rng=8)
        oracle = LabelOracle(ps)
        result = active_classify(ps.with_hidden_labels(), oracle,
                                 epsilon=0.5, rng=9)
        sigma = result.sigma_points
        assert sigma.n == result.sigma.size
        # Sigma labels must match ground truth at the recorded indices.
        indices, _weights, labels = result.sigma.arrays()
        assert (ps.labels[indices] == labels).all()
        # And the reported sigma error must be achieved by the classifier.
        from repro import weighted_error

        assert weighted_error(sigma, result.classifier) == \
            pytest.approx(result.sigma_error)

    def test_classifier_is_monotone_on_samples(self, rng):
        ps = planted_monotone(600, 3, noise=0.15, rng=10)
        oracle = LabelOracle(ps)
        result = active_classify(ps.with_hidden_labels(), oracle,
                                 epsilon=0.5, rng=11)
        probes = rng.random((300, 3))
        predictions = result.classifier.classify_matrix(probes)
        # Monotonicity spot-check on random comparable pairs.
        for _ in range(200):
            i, j = rng.integers(0, 300, size=2)
            if (probes[i] >= probes[j]).all():
                assert predictions[i] >= predictions[j]

    def test_3d_input_uses_matching_decomposition(self):
        ps = planted_monotone(300, 3, noise=0.1, rng=12)
        oracle = LabelOracle(ps)
        result = active_classify(ps.with_hidden_labels(), oracle,
                                 epsilon=0.5, rng=13)
        assert result.decomposition_method == "matching"
        optimum = solve_passive(ps).optimal_error
        err = error_count(ps, result.classifier)
        # Small input: fully probed, so exactly optimal.
        assert err == optimum

    def test_greedy_decomposition_works(self):
        ps = width_controlled(2_000, 4, noise=0.1, rng=14)
        oracle = LabelOracle(ps)
        result = active_classify(ps.with_hidden_labels(), oracle,
                                 epsilon=0.5, decomposition="greedy", rng=15)
        assert result.decomposition_method == "greedy"
        assert result.num_chains >= 4

    def test_default_delta_set_from_n(self):
        ps = width_controlled(100, 2, noise=0.1, rng=16)
        oracle = LabelOracle(ps)
        result = active_classify(ps.with_hidden_labels(), oracle,
                                 epsilon=0.5, rng=17)
        assert result.delta == pytest.approx(1.0 / (100 * 100))
