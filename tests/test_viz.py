"""Tests for the text renderer (repro.viz)."""

from __future__ import annotations

import pytest

from repro import ConstantClassifier, PointSet, ThresholdClassifier, UpsetClassifier
from repro.viz import render_decision_region, render_points


def _grid_body(art: str) -> str:
    """The character grid without borders and legend."""
    lines = art.splitlines()
    return "\n".join(line[1:-1] for line in lines[1:-2])


class TestRenderPoints:
    def test_labels_rendered(self, tiny_2d):
        art = render_points(tiny_2d)
        body = _grid_body(art)
        assert body.count("x") + body.count("X") == 2
        assert body.count("o") + body.count("O") == 2
        assert "label 0/1" in art

    def test_misclassified_uppercased(self, tiny_2d):
        # All-0 misclassifies the two label-1 points.
        art = render_points(tiny_2d, classifier=ConstantClassifier(0))
        body = _grid_body(art)
        assert body.count("X") == 2
        assert body.count("O") == 0

    def test_hidden_labels(self, tiny_2d):
        body = _grid_body(render_points(tiny_2d.with_hidden_labels()))
        assert body.count("?") == 4

    def test_requires_2d(self):
        ps = PointSet([(0.0,)], [0])
        with pytest.raises(ValueError):
            render_points(ps)

    def test_empty(self):
        ps = PointSet.from_points([])
        with pytest.raises(ValueError):
            render_points(ps)  # empty set is 1-D by construction

    def test_dimensions_of_output(self, tiny_2d):
        art = render_points(tiny_2d, width=30, height=10)
        lines = art.splitlines()
        assert len(lines) == 10 + 3  # grid + two borders + legend
        assert all(len(line) == 32 for line in lines[:-1])

    def test_identical_points_share_cell(self):
        ps = PointSet([(0.5, 0.5), (0.5, 0.5)], [1, 1])
        body = _grid_body(render_points(ps))
        assert body.count("x") == 1  # overplotted


class TestRenderDecisionRegion:
    def test_monotone_staircase_shape(self):
        h = UpsetClassifier([(0.3, 0.7), (0.7, 0.3)])
        art = render_decision_region(h, width=20, height=10)
        lines = [line[1:-1] for line in art.splitlines()[1:-2]]
        # Monotonicity in the rendering: within a row, once shaded, always
        # shaded to the right; between rows, the shaded prefix grows upward.
        for line in lines:
            first_hash = line.find("#")
            if first_hash != -1:
                assert "." not in line[first_hash:]
        widths = [len(line) - line.find("#") if "#" in line else 0 for line in lines]
        assert widths == sorted(widths, reverse=True)

    def test_threshold_region(self):
        h = ThresholdClassifier(0.5)
        art = render_decision_region(h, width=20, height=5)
        assert "#" in art and "." in art

    def test_overlay_points(self, tiny_2d):
        h = ConstantClassifier(1)
        art = render_decision_region(h, points=tiny_2d, width=20, height=10)
        assert "x" in art and "o" in art

    def test_overlay_requires_2d(self):
        ps = PointSet([(0.0,)], [0])
        with pytest.raises(ValueError):
            render_decision_region(ConstantClassifier(0), points=ps)
