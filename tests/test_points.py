"""Tests for the point/label/weight data model (repro.core.points)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import HIDDEN, LabeledPoint, PointSet
from repro.core.points import strictly_dominates, weakly_dominates


class TestLabeledPoint:
    def test_basic_construction(self):
        p = LabeledPoint((1.0, 2.0), label=1, weight=3.0, name="a")
        assert p.dim == 2
        assert p.label == 1
        assert p.weight == 3.0
        assert p.name == "a"

    def test_default_label_is_hidden(self):
        assert LabeledPoint((0.0,)).label == HIDDEN

    def test_rejects_bad_label(self):
        with pytest.raises(ValueError):
            LabeledPoint((0.0,), label=2)

    @pytest.mark.parametrize("weight", [0.0, -1.0, float("inf"), float("nan")])
    def test_rejects_bad_weight(self, weight):
        with pytest.raises(ValueError):
            LabeledPoint((0.0,), weight=weight)

    def test_weak_dominance_includes_equality(self):
        p = LabeledPoint((1.0, 2.0))
        q = LabeledPoint((1.0, 2.0))
        assert p.weakly_dominates(q)
        assert q.weakly_dominates(p)
        assert not p.strictly_dominates(q)

    def test_strict_dominance(self):
        hi = LabeledPoint((2.0, 2.0))
        lo = LabeledPoint((1.0, 2.0))
        assert hi.strictly_dominates(lo)
        assert not lo.strictly_dominates(hi)

    def test_incomparable(self):
        a = LabeledPoint((2.0, 0.0))
        b = LabeledPoint((0.0, 2.0))
        assert not a.weakly_dominates(b)
        assert not b.weakly_dominates(a)


class TestDominancePredicates:
    def test_weakly_dominates_function(self):
        assert weakly_dominates(np.array([1.0, 1.0]), np.array([1.0, 0.0]))
        assert not weakly_dominates(np.array([1.0, 0.0]), np.array([1.0, 1.0]))

    def test_strictly_dominates_needs_distinct(self):
        v = np.array([1.0, 1.0])
        assert not strictly_dominates(v, v.copy())


class TestPointSetConstruction:
    def test_from_rows(self):
        ps = PointSet([(0.0, 1.0), (1.0, 0.0)], [0, 1])
        assert ps.n == 2
        assert ps.dim == 2
        assert list(ps.labels) == [0, 1]
        assert ps.total_weight == 2.0

    def test_flat_1d_input_is_reshaped(self):
        ps = PointSet(np.array([1.0, 2.0, 3.0]), [0, 0, 1])
        assert ps.dim == 1
        assert ps.n == 3

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ValueError):
            PointSet([(0.0,), (1.0,)], [0])

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            PointSet([(0.0,), (1.0,)], [0, 1], [1.0, 0.0])

    def test_rejects_nonfinite_coords(self):
        with pytest.raises(ValueError):
            PointSet([(float("nan"),)], [0])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     -float("inf")])
    def test_rejects_nonfinite_coords_naming_the_point(self, bad):
        # NaN breaks dominance trichotomy (NaN >= x is always False), so
        # the boundary must reject it up front — and say which point.
        with pytest.raises(ValueError, match="point 1"):
            PointSet([(0.0, 1.0), (0.5, bad)], [0, 1])

    def test_labeled_point_rejects_nonfinite_coords(self):
        with pytest.raises(ValueError):
            LabeledPoint((0.0, float("nan")))

    def test_validate_false_opts_out(self):
        # Escape hatch for callers that pre-validate (or fuzz the solver
        # itself): construction succeeds, downstream behavior is on them.
        ps = PointSet([(float("nan"),), (1.0,)], [0, 1], validate=False)
        assert ps.n == 2
        assert not np.isfinite(ps.coords).all()

    def test_subset_skips_revalidation(self):
        ps = PointSet([(float("nan"),), (1.0,)], [0, 1], validate=False)
        assert ps.subset(np.array([0])).n == 1
        assert ps.replace().n == 2

    def test_rejects_bad_label_values(self):
        with pytest.raises(ValueError):
            PointSet([(0.0,)], [3])

    def test_from_points_round_trip(self):
        pts = [LabeledPoint((0.0, 1.0), 1, 2.0, "x"), LabeledPoint((1.0, 0.0), 0)]
        ps = PointSet.from_points(pts)
        assert ps.point(0) == pts[0]
        assert ps.point(1) == pts[1]

    def test_from_points_rejects_mixed_dims(self):
        with pytest.raises(ValueError):
            PointSet.from_points([LabeledPoint((0.0,)), LabeledPoint((0.0, 1.0))])

    def test_empty_set(self):
        ps = PointSet.from_points([])
        assert ps.n == 0
        assert ps.is_monotone_labeling()

    def test_names_length_checked(self):
        with pytest.raises(ValueError):
            PointSet([(0.0,)], [0], names=["a", "b"])

    def test_coords_are_immutable(self):
        ps = PointSet([(0.0,)], [0])
        with pytest.raises(ValueError):
            ps.coords[0, 0] = 5.0


class TestPointSetOperations:
    def test_subset_preserves_order_and_data(self, tiny_2d):
        sub = tiny_2d.subset([2, 0])
        assert sub.n == 2
        assert tuple(sub.coords[0]) == (2.0, 0.0)
        assert tuple(sub.coords[1]) == (0.0, 0.0)
        assert list(sub.labels) == [0, 1]

    def test_replace_labels(self, tiny_2d):
        swapped = tiny_2d.replace(labels=[0, 0, 0, 0])
        assert list(swapped.labels) == [0, 0, 0, 0]
        assert list(tiny_2d.labels) == [1, 0, 0, 1]  # original untouched

    def test_with_hidden_labels(self, tiny_2d):
        hidden = tiny_2d.with_hidden_labels()
        assert hidden.has_hidden_labels
        assert not tiny_2d.has_hidden_labels
        with pytest.raises(ValueError):
            hidden.require_full_labels()

    def test_iteration_yields_labeled_points(self, tiny_2d):
        pts = list(tiny_2d)
        assert len(pts) == 4
        assert all(isinstance(p, LabeledPoint) for p in pts)

    def test_repr_mentions_size(self, tiny_2d):
        assert "n=4" in repr(tiny_2d)


class TestDominanceMatrices:
    def test_weak_matrix_diagonal_true(self, tiny_2d):
        weak = tiny_2d.weak_dominance_matrix()
        assert weak.diagonal().all()

    def test_weak_matrix_contents(self, tiny_2d):
        weak = tiny_2d.weak_dominance_matrix()
        # (1,1) dominates (0,0); (2,0) dominates (0,0); (2,2) dominates all.
        assert weak[1, 0] and weak[2, 0] and weak[3, 0]
        assert weak[3, 1] and weak[3, 2]
        assert not weak[1, 2] and not weak[2, 1]

    def test_strict_matrix_excludes_duplicates(self):
        ps = PointSet([(1.0, 1.0), (1.0, 1.0)], [0, 1])
        strict = ps.strict_dominance_matrix()
        assert not strict.any()
        weak = ps.weak_dominance_matrix()
        assert weak.all()

    def test_matrix_is_cached(self, tiny_2d):
        assert tiny_2d.weak_dominance_matrix() is tiny_2d.weak_dominance_matrix()

    def test_monotone_labeling_detection(self, tiny_2d, monotone_2d):
        assert not tiny_2d.is_monotone_labeling()
        assert monotone_2d.is_monotone_labeling()

    def test_comparable(self, tiny_2d):
        assert tiny_2d.comparable(0, 3)
        assert not tiny_2d.comparable(1, 2)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 1, allow_nan=False),
                          st.floats(0, 1, allow_nan=False)),
                min_size=1, max_size=20))
def test_weak_dominance_matrix_matches_pairwise(coord_rows):
    """Property: the vectorized matrix agrees with pairwise comparison."""
    ps = PointSet(coord_rows, [0] * len(coord_rows))
    weak = ps.weak_dominance_matrix()
    for i in range(ps.n):
        for j in range(ps.n):
            expected = all(ps.coords[i][k] >= ps.coords[j][k] for k in range(2))
            assert bool(weak[i, j]) == expected


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 1, allow_nan=False),
                          st.floats(0, 1, allow_nan=False)),
                min_size=2, max_size=15))
def test_strict_dominance_is_antisymmetric(coord_rows):
    """Property: strict dominance never holds in both directions."""
    ps = PointSet(coord_rows, [0] * len(coord_rows))
    strict = ps.strict_dominance_matrix()
    assert not (strict & strict.T).any()
