"""Tests for the dominance digraph helpers (repro.poset.dominance)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PointSet
from repro.poset.dominance import (
    dominance_adjacency,
    dominance_digraph,
    maximal_points,
    minimal_points,
    topological_order,
)


class TestDominanceDigraph:
    def test_acyclic_with_duplicates(self):
        ps = PointSet([(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)], [0] * 3)
        order = dominance_digraph(ps)
        # Antisymmetric: no 2-cycles even among duplicates.
        assert not (order & order.T).any()
        # Duplicate tie broken by index: 1 is "above" 0.
        assert order[1, 0] and not order[0, 1]

    def test_edges_follow_strict_dominance(self, tiny_2d):
        order = dominance_digraph(tiny_2d)
        assert order[3, 0]  # (2,2) above (0,0)
        assert order[1, 0] and order[2, 0]
        assert not order[1, 2] and not order[2, 1]

    def test_adjacency_lists_match_matrix(self, tiny_2d):
        order = dominance_digraph(tiny_2d)
        adjacency = dominance_adjacency(tiny_2d)
        for j in range(tiny_2d.n):
            assert adjacency[j] == np.flatnonzero(order[:, j]).tolist()


class TestTopologicalOrder:
    def test_respects_dominance(self, tiny_2d):
        order = topological_order(tiny_2d)
        position = {idx: pos for pos, idx in enumerate(order)}
        matrix = dominance_digraph(tiny_2d)
        for i in range(tiny_2d.n):
            for j in range(tiny_2d.n):
                if matrix[i, j]:  # i above j => j earlier
                    assert position[j] < position[i]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 20), st.integers(1, 3), st.integers(0, 10_000))
    def test_respects_dominance_random(self, n, dim, seed):
        gen = np.random.default_rng(seed)
        ps = PointSet(gen.integers(0, 4, size=(n, dim)).astype(float), [0] * n)
        order = topological_order(ps)
        assert sorted(order) == list(range(n))
        position = {idx: pos for pos, idx in enumerate(order)}
        matrix = dominance_digraph(ps)
        for i in range(n):
            for j in range(n):
                if matrix[i, j]:
                    assert position[j] < position[i]


class TestExtremes:
    def test_minimal_and_maximal(self, tiny_2d):
        assert minimal_points(tiny_2d) == [0]
        assert maximal_points(tiny_2d) == [3]

    def test_antichain_all_extreme(self):
        ps = PointSet([(0.0, 2.0), (1.0, 1.0), (2.0, 0.0)], [0] * 3)
        assert minimal_points(ps) == [0, 1, 2]
        assert maximal_points(ps) == [0, 1, 2]

    def test_duplicates_tie_broken(self):
        ps = PointSet([(1.0,), (1.0,)], [0, 0])
        # Index 0 is "below" its duplicate, index 1 "above".
        assert minimal_points(ps) == [0]
        assert maximal_points(ps) == [1]
