"""Tests for boundary extraction and explanations (repro.core.boundary)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ThresholdClassifier, UpsetClassifier
from repro.core.boundary import (
    boundary_staircase_2d,
    decision_boundary_1d,
    explain_acceptance,
    explain_rejection,
)


@pytest.fixture
def staircase_classifier() -> UpsetClassifier:
    return UpsetClassifier([(0.2, 0.8), (0.5, 0.5), (0.8, 0.2)])


class TestExplainAcceptance:
    def test_witness_is_dominated(self, staircase_classifier):
        point = (0.6, 0.6)
        witness = explain_acceptance(staircase_classifier, point)
        assert witness is not None
        assert (np.asarray(point) >= witness).all()

    def test_tightest_witness_selected(self, staircase_classifier):
        # (0.9, 0.9) dominates all three anchors; the tightest has the
        # largest coordinate sum (any of the three sums to 1.0 — ties
        # broken deterministically by argmax).
        witness = explain_acceptance(staircase_classifier, (0.9, 0.9))
        assert witness.sum() == pytest.approx(1.0)

    def test_rejected_point_returns_none(self, staircase_classifier):
        assert explain_acceptance(staircase_classifier, (0.1, 0.1)) is None


class TestExplainRejection:
    def test_deficit_vector_is_actionable(self, staircase_classifier):
        point = (0.45, 0.45)
        explanation = explain_rejection(staircase_classifier, point)
        assert explanation is not None
        deficit = explanation["deficit"]
        # Raising the point by the deficit reaches the anchor => accepted.
        boosted = np.asarray(point) + deficit
        assert staircase_classifier.classify(tuple(boosted)) == 1
        # The chosen anchor minimizes total shortfall: (0.5, 0.5) is closest.
        assert explanation["anchor"] == pytest.approx([0.5, 0.5])

    def test_accepted_point_returns_none(self, staircase_classifier):
        assert explain_rejection(staircase_classifier, (0.9, 0.9)) is None

    def test_all_zero_classifier(self):
        h = UpsetClassifier([], dim=2)
        explanation = explain_rejection(h, (0.5, 0.5))
        assert explanation["anchor"] is None


class TestDecisionBoundary1D:
    def test_threshold_classifier_boundary_recovered(self):
        h = ThresholdClassifier(0.37)
        t = decision_boundary_1d(h, dim=0, fixed=[], lo=0.0, hi=1.0)
        assert t == pytest.approx(0.37, abs=1e-6)

    def test_upset_boundary_depends_on_fixed_coordinates(self):
        h = UpsetClassifier([(0.2, 0.8), (0.8, 0.2)])
        # With y fixed high (>= 0.8), x must exceed 0.2.
        t_high = decision_boundary_1d(h, dim=0, fixed=[0.9], lo=0.0, hi=1.0)
        assert t_high == pytest.approx(0.2, abs=1e-6)
        # With y fixed low (< 0.2... at 0.5), only the (0.8, 0.2) anchor
        # can be dominated once y >= 0.2: x must exceed 0.8.
        t_low = decision_boundary_1d(h, dim=0, fixed=[0.5], lo=0.0, hi=1.0)
        assert t_low == pytest.approx(0.8, abs=1e-6)

    def test_constant_segments(self):
        h = ThresholdClassifier(5.0)
        assert decision_boundary_1d(h, 0, [], lo=0.0, hi=1.0) == 1.0  # all 0
        assert decision_boundary_1d(h, 0, [], lo=6.0, hi=7.0) == 6.0  # all 1

    def test_validation(self):
        h = ThresholdClassifier(0.5)
        with pytest.raises(ValueError):
            decision_boundary_1d(h, 0, [], lo=1.0, hi=0.0)


class TestBoundaryStaircase2D:
    def test_corners_sorted_and_antichain(self, staircase_classifier):
        corners = boundary_staircase_2d(staircase_classifier)
        xs = [x for x, _y in corners]
        ys = [y for _x, y in corners]
        assert xs == sorted(xs)
        assert ys == sorted(ys, reverse=True)
        assert len(corners) == 3

    def test_requires_2d(self):
        h = UpsetClassifier([(0.5,)])
        with pytest.raises(ValueError):
            boundary_staircase_2d(h)
