"""Tests for blockwise pairwise computations (repro.core.pairwise)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PointSet, is_monotone_assignment, solve_passive
from repro.core.pairwise import (
    blocked_contending_mask,
    blocked_dominance_pairs,
    blocked_is_monotone_assignment,
)
from repro.core.passive import contending_mask
from repro.datasets.synthetic import planted_monotone


def _random_labeled(seed: int, n: int, dim: int, grid: int = 5) -> PointSet:
    gen = np.random.default_rng(seed)
    coords = gen.integers(0, grid, size=(n, dim)).astype(float)
    labels = gen.integers(0, 2, size=n)
    return PointSet(coords, labels)


class TestBlockedContendingMask:
    @pytest.mark.parametrize("block_size", [1, 3, 64])
    def test_matches_matrix_version(self, block_size):
        for seed in range(10):
            ps = _random_labeled(seed, 40, 2)
            assert (blocked_contending_mask(ps, block_size)
                    == contending_mask(ps)).all()

    def test_empty_and_single_class(self):
        empty = PointSet.from_points([])
        assert blocked_contending_mask(empty).shape == (0,)
        ones = PointSet([(0.0,), (1.0,)], [1, 1])
        assert not blocked_contending_mask(ones).any()

    def test_requires_labels(self, tiny_2d):
        with pytest.raises(ValueError):
            blocked_contending_mask(tiny_2d.with_hidden_labels())


class TestBlockedDominancePairs:
    def test_stream_matches_matrix(self):
        ps = _random_labeled(3, 30, 2)
        weak = ps.weak_dominance_matrix()
        zeros = np.flatnonzero(ps.labels == 0)
        ones = np.flatnonzero(ps.labels == 1)
        got = {src: set(hits)
               for src, hits in blocked_dominance_pairs(ps, zeros, ones, 4)}
        for p in zeros:
            expected = {int(q) for q in ones if weak[p, q]}
            assert got.get(int(p), set()) == expected

    def test_empty_sides(self, tiny_2d):
        assert list(blocked_dominance_pairs(tiny_2d, np.array([]), np.array([0]))) == []
        assert list(blocked_dominance_pairs(tiny_2d, np.array([0]), np.array([]))) == []


class TestBlockedMonotoneCheck:
    @pytest.mark.parametrize("block_size", [1, 2, 128])
    def test_matches_matrix_version(self, block_size):
        gen = np.random.default_rng(0)
        for seed in range(10):
            ps = _random_labeled(seed + 100, 25, 2)
            pred = gen.integers(0, 2, size=25).astype(np.int8)
            assert blocked_is_monotone_assignment(ps, pred, block_size) == \
                is_monotone_assignment(ps, pred)

    def test_all_same_prediction_is_monotone(self, tiny_2d):
        assert blocked_is_monotone_assignment(tiny_2d, np.zeros(4, dtype=np.int8))
        assert blocked_is_monotone_assignment(tiny_2d, np.ones(4, dtype=np.int8))

    def test_shape_validation(self, tiny_2d):
        with pytest.raises(ValueError):
            blocked_is_monotone_assignment(tiny_2d, np.zeros(3, dtype=np.int8))


class TestSolvePassiveBlockwise:
    def test_forced_blockwise_matches_default(self):
        ps = planted_monotone(400, 3, noise=0.15, rng=7, weights="random")
        default = solve_passive(ps)
        blocked = solve_passive(ps, block_size=37)
        assert blocked.optimal_error == pytest.approx(default.optimal_error)
        assert blocked.num_contending == default.num_contending
        assert (blocked.assignment == default.assignment).all()

    def test_blockwise_with_push_relabel(self):
        ps = planted_monotone(200, 2, noise=0.2, rng=8)
        a = solve_passive(ps, block_size=16, backend="push_relabel")
        b = solve_passive(ps)
        assert a.optimal_error == pytest.approx(b.optimal_error)

    def test_blockwise_without_reduction(self):
        ps = planted_monotone(150, 2, noise=0.2, rng=9)
        a = solve_passive(ps, block_size=10, use_contending_reduction=False)
        b = solve_passive(ps)
        assert a.optimal_error == pytest.approx(b.optimal_error)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 25), st.integers(1, 3), st.integers(1, 7),
       st.integers(0, 10_000))
def test_blocked_mask_equals_matrix_mask(n, dim, block_size, seed):
    """Property: blockwise and matrix contending masks always agree."""
    ps = _random_labeled(seed, n, dim)
    assert (blocked_contending_mask(ps, block_size)
            == contending_mask(ps)).all()
