"""Setup shim enabling legacy editable installs (offline environments).

The environment this reproduction targets has no ``wheel`` package and no
network access, so PEP 660 editable builds are unavailable;
``pip install -e .`` falls back to ``setup.py develop`` through this shim.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
